//! Tree-walking evaluator for normalized XCore expressions.
//!
//! The evaluator is **network-agnostic**: remote execution (`Execute` nodes)
//! and non-local `fn:doc` URIs are delegated to the [`RemoteHandler`] and
//! [`DocResolver`] hooks, which `xqd-xrpc` implements with the three message
//! passing semantics. Everything else — node identity, document order,
//! duplicate elimination, constructor copy semantics — is evaluated against
//! the local [`Store`], which is exactly what makes the paper's semantic
//! Problems 1–5 reproducible: a shipped fragment is just another document in
//! the receiving store.

use xqd_xml::axes::{axis_nodes, node_test_matches, NodeTest};
use xqd_xml::{index, Axis, DocBuilder, DocId, NodeId, NodeKind, Store};

use crate::ast::*;
use crate::builtins;
use crate::value::*;

/// Static context attributes shipped in XRPC message headers (Problem 5
/// class 1: `static-base-uri`, `default-collation`, `current-dateTime`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticContext {
    pub base_uri: String,
    pub default_collation: String,
    pub current_datetime: String,
}

impl Default for StaticContext {
    fn default() -> Self {
        StaticContext {
            base_uri: "local:/".to_string(),
            default_collation: "http://www.w3.org/2005/xpath-functions/collation/codepoint"
                .to_string(),
            // fixed for reproducibility; XRPC ships it so both sides agree
            current_datetime: "2009-03-29T12:00:00Z".to_string(),
        }
    }
}

/// Resolves `fn:doc` URIs to documents, loading/fetching if necessary.
pub trait DocResolver {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<DocId>;
}

/// Resolver that only finds documents already in the store.
#[derive(Debug, Default)]
pub struct LocalResolver;

impl DocResolver for LocalResolver {
    fn resolve(&mut self, store: &mut Store, uri: &str) -> EvalResult<DocId> {
        store
            .doc_by_uri(uri)
            .ok_or_else(|| EvalError::new(format!("document not found: {uri}")))
    }
}

/// One pre-bound remote call of a scatter round. Every parameter sequence
/// is already evaluated, so a handler can encode all requests up front and
/// fan the execute phase out across peers concurrently.
pub struct ScatterCall<'a> {
    pub peer: String,
    pub params: Vec<(String, Sequence)>,
    pub body: &'a Expr,
    pub projection: Option<&'a ExecProjection>,
}

/// Executes an `Execute` (XRPCExpr) remotely and shreds the response into
/// the local store.
pub trait RemoteHandler {
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        params: &[(String, Sequence)],
        body: &Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Sequence>;

    /// **Bulk RPC**: executes the same body once per parameter binding in a
    /// single network interaction. The evaluator batches a remote call
    /// nested directly in a `for`-loop through this method; under
    /// pass-by-fragment all iterations then share one fragments preamble,
    /// which is what lets Section V drop `ForExpr` from condition iii.
    ///
    /// The default implementation degrades to one interaction per call.
    #[allow(clippy::too_many_arguments)]
    fn execute_bulk(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        peer: &str,
        calls: &[Vec<(String, Sequence)>],
        body: &Expr,
        projection: Option<&ExecProjection>,
    ) -> EvalResult<Vec<Sequence>> {
        calls
            .iter()
            .map(|params| self.execute(local, static_ctx, peer, params, body, projection))
            .collect()
    }

    /// **Scatter-gather**: executes one round of calls aimed at (usually
    /// distinct) peers. The evaluator only batches calls whose parameters
    /// are independent of each other's results, so a handler may run them
    /// concurrently — but it must gather results in call order and stay
    /// observably identical to executing the calls one by one.
    ///
    /// The default implementation degrades to the sequential loop.
    fn execute_scatter(
        &mut self,
        local: &mut Store,
        static_ctx: &StaticContext,
        calls: &[ScatterCall<'_>],
    ) -> EvalResult<Vec<Sequence>> {
        calls
            .iter()
            .map(|c| self.execute(local, static_ctx, &c.peer, &c.params, c.body, c.projection))
            .collect()
    }
}

pub(crate) const MAX_CALL_DEPTH: usize = 128;

/// The evaluator. Owns no data; borrows the store and hooks.
///
/// The `pub(crate)` fields are shared with the compiled-plan engine
/// ([`crate::compile`]), which drives the same environment, context stack
/// and scratch buffers so the two engines cannot diverge in their
/// book-keeping.
pub struct Evaluator<'a> {
    pub store: &'a mut Store,
    pub functions: &'a [FunctionDef],
    pub resolver: &'a mut dyn DocResolver,
    pub remote: Option<&'a mut dyn RemoteHandler>,
    pub static_ctx: StaticContext,
    pub(crate) env: Vec<(String, Sequence)>,
    pub(crate) context: Vec<Item>,
    pub(crate) call_depth: usize,
    /// Answer eligible axis steps from the per-document name indexes
    /// (staircase join) instead of arena scans. Results are bit-identical
    /// either way; the toggle exists so equivalence tests and the `paths`
    /// bench can compare the two engines.
    pub(crate) use_indexes: bool,
    /// Scratch rank buffer reused across `axis_nodes` / staircase calls so
    /// path evaluation doesn't allocate a fresh `Vec` per step.
    pub(crate) scratch: Vec<u32>,
    /// Per-op profiling hook for the compiled engine (`EXPLAIN ANALYZE`);
    /// `None` on ordinary runs, leaving only a branch on the dispatch path.
    pub(crate) profile: Option<crate::compile::ProfileHook>,
}

impl<'a> Evaluator<'a> {
    pub fn new(
        store: &'a mut Store,
        functions: &'a [FunctionDef],
        resolver: &'a mut dyn DocResolver,
    ) -> Self {
        Evaluator {
            store,
            functions,
            resolver,
            remote: None,
            static_ctx: StaticContext::default(),
            env: Vec::new(),
            context: Vec::new(),
            call_depth: 0,
            use_indexes: true,
            scratch: Vec::new(),
            profile: None,
        }
    }

    pub fn with_remote(mut self, remote: &'a mut dyn RemoteHandler) -> Self {
        self.remote = Some(remote);
        self
    }

    /// Enables or disables the indexed path-step engine (on by default).
    pub fn with_indexes(mut self, on: bool) -> Self {
        self.use_indexes = on;
        self
    }

    pub fn with_static_context(mut self, ctx: StaticContext) -> Self {
        self.static_ctx = ctx;
        self
    }

    /// Attaches a per-op execution profile (compiled-plan runs only — the
    /// interpreter has no ops to attribute to).
    pub fn with_profile(mut self, hook: crate::compile::ProfileHook) -> Self {
        self.profile = Some(hook);
        self
    }

    /// Pre-binds a variable (used for shipped XRPC parameters).
    pub fn bind(&mut self, name: &str, value: Sequence) {
        self.env.push((name.to_string(), value));
    }

    pub(crate) fn lookup(&self, name: &str) -> EvalResult<Sequence> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| EvalError::new(format!("unbound variable ${name}")))
    }

    pub(crate) fn context_item(&self) -> EvalResult<Item> {
        self.context
            .last()
            .cloned()
            .ok_or_else(|| EvalError::new("context item is undefined"))
    }

    /// Evaluates an expression to a sequence.
    pub fn eval(&mut self, e: &Expr) -> EvalResult {
        match e {
            Expr::Literal(a) => Ok(Sequence::unit(Item::Atom(a.clone()))),
            Expr::Empty => Ok(Sequence::new()),
            Expr::Sequence(es) => {
                // scatter point: ≥2 sibling remote calls to ≥2 distinct
                // peers are independent by construction (sequence elements
                // bind nothing) and fan out as one round
                if self.remote.is_some() {
                    if let Some(idxs) = sequence_scatter(es) {
                        return self.eval_sequence_scatter(es, &idxs);
                    }
                }
                let mut out = Vec::new();
                for e in es {
                    out.extend(self.eval(e)?);
                }
                Ok(out.into())
            }
            Expr::VarRef(v) => self.lookup(v),
            Expr::ContextItem => Ok(Sequence::unit(self.context_item()?)),
            Expr::For { var, seq, ret } => {
                let input = self.eval(seq)?;
                // Bulk RPC: a remote call directly in the return clause
                // (possibly under local lets) is batched into one message
                if self.remote.is_some() {
                    if let Some(plan) = bulk_pattern(ret) {
                        return self.eval_bulk_for(var, input, plan);
                    }
                }
                let mut out = Vec::new();
                for item in input.iter() {
                    self.env.push((var.clone(), Sequence::unit(item.clone())));
                    let r = self.eval(ret);
                    self.env.pop();
                    out.extend(r?);
                }
                Ok(out.into())
            }
            Expr::Let { var, value, ret } => {
                // scatter point: a chain of lets each binding a remote call
                // whose parameters don't reference earlier chain variables
                // (the decomposed shape of a federated join) fans out as
                // one round
                if self.remote.is_some() {
                    if let Some(chain) = let_scatter(e) {
                        return self.eval_let_scatter(chain);
                    }
                }
                let v = self.eval(value)?;
                self.env.push((var.clone(), v));
                let r = self.eval(ret);
                self.env.pop();
                r
            }
            Expr::If { cond, then, els } => {
                let c = self.eval(cond)?;
                if effective_boolean_value(&c)? {
                    self.eval(then)
                } else {
                    self.eval(els)
                }
            }
            Expr::Typeswitch { input, cases, default_var, default } => {
                let v = self.eval(input)?;
                for case in cases {
                    if matches_seq_type(self.store, &v, &case.seq_type) {
                        self.env.push((case.var.clone(), v));
                        let r = self.eval(&case.body);
                        self.env.pop();
                        return r;
                    }
                }
                self.env.push((default_var.clone(), v));
                let r = self.eval(default);
                self.env.pop();
                r
            }
            Expr::Comparison { op, lhs, rhs } => {
                let (l, r) = self.eval_operand_pair(lhs, rhs)?;
                let b = general_compare(self.store, *op, &l, &r)?;
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(b))))
            }
            Expr::NodeComparison { op, lhs, rhs } => {
                let (l, r) = self.eval_operand_pair(lhs, rhs)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::new());
                }
                let ln = single_node(&l, "node comparison")?;
                let rn = single_node(&r, "node comparison")?;
                let b = match op {
                    NodeCompOp::Is => ln == rn,
                    NodeCompOp::Before => ln < rn,
                    NodeCompOp::After => ln > rn,
                };
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(b))))
            }
            Expr::OrderBy { input, specs } => self.eval_order_by(input, specs),
            Expr::NodeSet { op, lhs, rhs } => {
                let (l, r) = self.eval_operand_pair(lhs, rhs)?;
                let (mut l, mut r) = (l.into_vec(), r.into_vec());
                sort_document_order(&mut l)?;
                sort_document_order(&mut r)?;
                let rset: std::collections::HashSet<NodeId> = r
                    .iter()
                    .map(|i| match i {
                        Item::Node(n) => *n,
                        Item::Atom(_) => unreachable!(),
                    })
                    .collect();
                let mut out = Vec::new();
                match op {
                    NodeSetOp::Union => {
                        out = l;
                        out.extend(r);
                        sort_document_order(&mut out)?;
                    }
                    NodeSetOp::Intersect => {
                        for i in l {
                            if matches!(&i, Item::Node(n) if rset.contains(n)) {
                                out.push(i);
                            }
                        }
                    }
                    NodeSetOp::Except => {
                        for i in l {
                            if matches!(&i, Item::Node(n) if !rset.contains(n)) {
                                out.push(i);
                            }
                        }
                    }
                }
                Ok(out.into())
            }
            Expr::Construct(c) => self.eval_constructor(c),
            Expr::Path { start, steps } => self.eval_path(start.as_deref(), steps),
            Expr::Filter { input, predicate } => {
                let input = self.eval(input)?;
                Ok(self.apply_predicate(&input, predicate)?.into())
            }
            Expr::FunCall { name, args } => self.eval_funcall(name, args),
            Expr::And(l, r) => {
                let lv = self.eval(l)?;
                if !effective_boolean_value(&lv)? {
                    return Ok(Sequence::unit(Item::Atom(Atomic::Bool(false))));
                }
                let rv = self.eval(r)?;
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(effective_boolean_value(&rv)?))))
            }
            Expr::Or(l, r) => {
                let lv = self.eval(l)?;
                if effective_boolean_value(&lv)? {
                    return Ok(Sequence::unit(Item::Atom(Atomic::Bool(true))));
                }
                let rv = self.eval(r)?;
                Ok(Sequence::unit(Item::Atom(Atomic::Bool(effective_boolean_value(&rv)?))))
            }
            Expr::Arith { op, lhs, rhs } => {
                let (l, r) = self.eval_operand_pair(lhs, rhs)?;
                if l.is_empty() || r.is_empty() {
                    return Ok(Sequence::new());
                }
                let la = atomize(self.store, &l);
                let ra = atomize(self.store, &r);
                if la.len() != 1 || ra.len() != 1 {
                    return Err(EvalError::new("arithmetic on a multi-item sequence"));
                }
                let a = to_number(&la[0])
                    .ok_or_else(|| EvalError::new("left operand is not numeric"))?;
                let b = to_number(&ra[0])
                    .ok_or_else(|| EvalError::new("right operand is not numeric"))?;
                let result = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(EvalError::new("division by zero"));
                        }
                        a / b
                    }
                    ArithOp::Mod => {
                        if b == 0.0 {
                            return Err(EvalError::new("modulo by zero"));
                        }
                        a % b
                    }
                };
                // integer-preserving when both inputs were integers
                let int_inputs = matches!(
                    (&la[0], &ra[0]),
                    (Atomic::Int(_), Atomic::Int(_))
                ) && *op != ArithOp::Div;
                Ok(Sequence::unit(Item::Atom(if int_inputs && result.fract() == 0.0 {
                    Atomic::Int(result as i64)
                } else {
                    Atomic::Dbl(result)
                })))
            }
            Expr::Execute { peer, params, body, projection } => {
                let peer_seq = self.eval(peer)?;
                let peer_uri = match peer_seq.as_slice() {
                    [item] => string_value(self.store, item),
                    _ => return Err(EvalError::new("execute at peer must be a single item")),
                };
                let mut bound = Vec::with_capacity(params.len());
                for p in params {
                    bound.push((p.var.clone(), self.lookup(&p.outer)?));
                }
                match &mut self.remote {
                    Some(handler) => handler.execute(
                        self.store,
                        &self.static_ctx,
                        &peer_uri,
                        &bound,
                        body,
                        projection.as_deref(),
                    ),
                    None => Err(EvalError::new(
                        "execute at: no remote handler configured (local-only evaluator)",
                    )),
                }
            }
        }
    }

    fn eval_order_by(&mut self, input: &Expr, specs: &[OrderSpec]) -> EvalResult {
        let items = self.eval(input)?;
        // evaluate keys with each item as context item
        let mut keyed: Vec<(Vec<Option<Atomic>>, usize, Item)> = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            let mut keys = Vec::with_capacity(specs.len());
            self.context.push(item.clone());
            for spec in specs {
                let k = self.eval(&spec.key);
                match k {
                    Ok(seq) => {
                        let atoms = atomize(self.store, &seq);
                        keys.push(atoms.into_iter().next());
                    }
                    Err(e) => {
                        self.context.pop();
                        return Err(e);
                    }
                }
            }
            self.context.pop();
            keyed.push((keys, i, item));
        }
        keyed.sort_by(|(ka, ia, _), (kb, ib, _)| {
            for (idx, spec) in specs.iter().enumerate() {
                let ord = compare_order_keys(&ka[idx], &kb[idx]);
                let ord = if spec.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            ia.cmp(ib) // stable
        });
        Ok(keyed.into_iter().map(|(_, _, item)| item).collect())
    }

    fn eval_path(&mut self, start: Option<&Expr>, steps: &[Step]) -> EvalResult {
        let mut current: Sequence = match start {
            Some(e) => self.eval(e)?,
            None => {
                // leading "/": root of the context item's document
                let ctx = self.context_item()?;
                match ctx {
                    Item::Node(n) => Sequence::unit(Item::Node(NodeId::new(n.doc, 0))),
                    Item::Atom(_) => {
                        return Err(EvalError::new("leading / requires a node context item"))
                    }
                }
            }
        };
        let mut i = 0;
        while i < steps.len() {
            let step = &steps[i];
            // `descendant-or-self::node()/child::n` (the expansion of `//n`)
            // is equivalent to `descendant::n` — both exclude attributes —
            // so the pair collapses into a single staircase lookup.
            if self.use_indexes
                && step.axis == Axis::DescendantOrSelf
                && matches!(step.test, NameTest::AnyKind)
                && step.predicates.is_empty()
            {
                if let Some(next) = steps.get(i + 1) {
                    if next.axis == Axis::Child
                        && matches!(next.test, NameTest::Name(_))
                        && next.predicates.is_empty()
                    {
                        let NameTest::Name(name) = &next.test else { unreachable!() };
                        if let Some(fast) =
                            self.indexed_named_step(&current, Axis::Descendant, name)?
                        {
                            current = fast;
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            if let Some(fast) = self.indexed_step(&current, step)? {
                current = fast;
                i += 1;
                continue;
            }
            let mut result: Vec<Item> = Vec::new();
            for item in current.iter() {
                let node = match item {
                    Item::Node(n) => *n,
                    Item::Atom(_) => {
                        return Err(EvalError::new("axis step applied to an atomic value"))
                    }
                };
                let candidates = self.step_candidates(node, step)?;
                result.extend(candidates);
            }
            sort_document_order(&mut result)?;
            current = result.into();
            i += 1;
        }
        Ok(current)
    }

    /// Whole-step indexed evaluation when the step is an eligible
    /// `(axis, name)` pair without predicates. Returns `Ok(None)` when the
    /// step must take the scan path.
    fn indexed_step(&mut self, current: &Sequence, step: &Step) -> EvalResult<Option<Sequence>> {
        if !self.use_indexes
            || !step.predicates.is_empty()
            || !matches!(
                step.axis,
                Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute
            )
        {
            return Ok(None);
        }
        let NameTest::Name(name) = &step.test else {
            return Ok(None);
        };
        self.indexed_named_step(current, step.axis, name)
    }

    /// Answers `axis::name` over the whole context sequence from the
    /// per-document name indexes. Contexts are grouped by document, sorted
    /// and deduplicated, then resolved with staircase interval lookups; the
    /// final cross-document `sort_document_order` matches the scan path's
    /// post-step normalization exactly.
    pub(crate) fn indexed_named_step(
        &mut self,
        current: &Sequence,
        axis: Axis,
        name: &str,
    ) -> EvalResult<Option<Sequence>> {
        // Same error the scan path raises on the first atomic context item.
        if current.iter().any(|i| matches!(i, Item::Atom(_))) {
            return Err(EvalError::new("axis step applied to an atomic value"));
        }
        let Some(name_id) = self.store.names.get(name) else {
            // QName not interned in this store: matches nothing (scan path
            // reaches the same result via `NodeTest::UnknownName`).
            return Ok(Some(Sequence::new()));
        };
        self.staircase_named(current, axis, name_id).map(Some)
    }

    /// The staircase lookup proper, after the context has been checked for
    /// atomics and the QName resolved to an interned id. Compiled plans call
    /// this directly with their pre-resolved [`xqd_xml::name::NameId`]s.
    pub(crate) fn staircase_named(
        &mut self,
        current: &Sequence,
        axis: Axis,
        name_id: xqd_xml::name::NameId,
    ) -> EvalResult<Sequence> {
        let mut by_doc: Vec<(DocId, Vec<u32>)> = Vec::new();
        for item in current.iter() {
            let Item::Node(n) = item else { unreachable!() };
            match by_doc.iter_mut().find(|(d, _)| *d == n.doc) {
                Some((_, ranks)) => ranks.push(n.idx),
                None => by_doc.push((n.doc, vec![n.idx])),
            }
        }
        let mut out: Vec<Item> = Vec::new();
        let mut ranks = std::mem::take(&mut self.scratch);
        for (doc_id, mut ctxs) in by_doc {
            ctxs.sort_unstable();
            ctxs.dedup();
            self.store.ensure_name_index(doc_id);
            let doc = self.store.doc(doc_id);
            let ix = doc.name_index().expect("ensure_name_index just built it");
            ranks.clear();
            match axis {
                Axis::Descendant => {
                    index::descendants_named(doc, ix, &ctxs, name_id, false, &mut ranks)
                }
                Axis::DescendantOrSelf => {
                    index::descendants_named(doc, ix, &ctxs, name_id, true, &mut ranks)
                }
                Axis::Child => index::children_named(doc, ix, &ctxs, name_id, &mut ranks),
                Axis::Attribute => index::attributes_named(doc, ix, &ctxs, name_id, &mut ranks),
                _ => unreachable!("indexed_step gates the axis"),
            }
            out.extend(ranks.iter().map(|&r| Item::Node(NodeId::new(doc_id, r))));
        }
        ranks.clear();
        self.scratch = ranks;
        sort_document_order(&mut out)?;
        Ok(out.into())
    }

    /// Applies one step (axis + test + predicates) to one context node.
    fn step_candidates(&mut self, node: NodeId, step: &Step) -> EvalResult<Vec<Item>> {
        let test = {
            let names = &self.store.names;
            match &step.test {
                NameTest::Name(n) => {
                    names.get(n).map(NodeTest::Name).unwrap_or(NodeTest::UnknownName)
                }
                NameTest::Wildcard => NodeTest::Wildcard,
                NameTest::AnyKind => NodeTest::AnyKind,
                NameTest::Text => NodeTest::Text,
                NameTest::Comment => NodeTest::Comment,
            }
        };
        let mut raw = Vec::new();
        let mut reached = std::mem::take(&mut self.scratch);
        reached.clear();
        {
            let doc = self.store.doc(node.doc);
            axis_nodes(doc, node.idx, step.axis, &mut reached);
            for &r in &reached {
                if node_test_matches(doc, r, step.axis, &test) {
                    raw.push(Item::Node(NodeId::new(node.doc, r)));
                }
            }
        }
        reached.clear();
        self.scratch = reached;
        let mut filtered = raw;
        for pred in &step.predicates {
            filtered = self.apply_predicate(&filtered, pred)?;
        }
        Ok(filtered)
    }

    /// XPath predicate semantics: a numeric predicate selects by position
    /// (1-based, in the order of the input sequence); anything else filters
    /// by effective boolean value with the item as context item.
    fn apply_predicate(&mut self, input: &[Item], pred: &Expr) -> EvalResult<Vec<Item>> {
        let mut out = Vec::new();
        for (i, item) in input.iter().enumerate() {
            self.context.push(item.clone());
            let v = self.eval(pred);
            self.context.pop();
            let v = v?;
            let keep = match v.as_slice() {
                [Item::Atom(a @ (Atomic::Int(_) | Atomic::Dbl(_)))] => {
                    let pos = to_number(a).unwrap();
                    (i + 1) as f64 == pos
                }
                _ => effective_boolean_value(&v)?,
            };
            if keep {
                out.push(item.clone());
            }
        }
        Ok(out)
    }

    fn eval_funcall(&mut self, name: &str, args: &[Expr]) -> EvalResult {
        // builtins first
        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            arg_values.push(self.eval(a)?);
        }
        if let Some(result) = builtins::eval_builtin(self, name, &arg_values)? {
            return Ok(result);
        }
        // user-defined function
        let func = self
            .functions
            .iter()
            .find(|f| f.name == name)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("unknown function {name}()")))?;
        if func.params.len() != arg_values.len() {
            return Err(EvalError::new(format!(
                "{name}() expects {} arguments, got {}",
                func.params.len(),
                arg_values.len()
            )));
        }
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(EvalError::new(format!("call depth exceeded in {name}()")));
        }
        // function bodies see only their parameters (fresh scope)
        let saved_env = std::mem::take(&mut self.env);
        let saved_ctx = std::mem::take(&mut self.context);
        for ((p, _), v) in func.params.iter().zip(arg_values) {
            self.env.push((p.clone(), v));
        }
        self.call_depth += 1;
        let result = self.eval(&func.body);
        self.call_depth -= 1;
        self.env = saved_env;
        self.context = saved_ctx;
        result
    }

    fn eval_constructor(&mut self, c: &Constructor) -> EvalResult {
        match c {
            Constructor::Element { name, content } => {
                let name = self.constructor_name(name)?;
                let content = self.eval(content)?;
                let mut b = DocBuilder::new(None);
                b.start_element(&name);
                self.append_content(&mut b, &content)?;
                b.end_element();
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 1))))
            }
            Constructor::Document { content } => {
                let content = self.eval(content)?;
                let mut b = DocBuilder::new(None);
                self.append_content(&mut b, &content)?;
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 0))))
            }
            Constructor::Text { content } => {
                let content = self.eval(content)?;
                if content.is_empty() {
                    return Ok(Sequence::new());
                }
                let text = content
                    .iter()
                    .map(|i| string_value(self.store, i))
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut b = DocBuilder::new(None);
                b.text(&text);
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 1))))
            }
            Constructor::Attribute { name, content } => {
                let name = self.constructor_name(name)?;
                let content = self.eval(content)?;
                let value = content
                    .iter()
                    .map(|i| string_value(self.store, i))
                    .collect::<Vec<_>>()
                    .join(" ");
                // standalone attribute nodes live under a holder element
                let mut b = DocBuilder::new(None);
                b.start_element("attribute-holder");
                b.attribute(&name, &value);
                b.end_element();
                let doc = self.store.attach(b.finish());
                Ok(Sequence::unit(Item::Node(NodeId::new(doc, 2))))
            }
        }
    }

    fn constructor_name(&mut self, name: &ElemName) -> EvalResult<String> {
        match name {
            ElemName::Static(n) => Ok(n.clone()),
            ElemName::Computed(e) => {
                let v = self.eval(e)?;
                match v.as_slice() {
                    [item] => Ok(string_value(self.store, item)),
                    _ => Err(EvalError::new("computed constructor name must be a single item")),
                }
            }
        }
    }

    /// XQuery content semantics: attribute items first (become attributes of
    /// the enclosing element), nodes are deep-copied, adjacent atomics join
    /// with single spaces into one text node.
    pub(crate) fn append_content(&mut self, b: &mut DocBuilder, content: &[Item]) -> EvalResult<()> {
        let mut pending_text: Option<String> = None;
        let mut seen_child = false;
        for item in content {
            match item {
                Item::Atom(a) => {
                    let lex = a.to_lexical();
                    match &mut pending_text {
                        Some(t) => {
                            t.push(' ');
                            t.push_str(&lex);
                        }
                        None => pending_text = Some(lex),
                    }
                }
                Item::Node(n) => {
                    let is_attr =
                        self.store.doc(n.doc).kind(n.idx) == NodeKind::Attribute;
                    if is_attr {
                        if seen_child || pending_text.is_some() {
                            return Err(EvalError::new(
                                "attribute node after non-attribute content (err:XQTY0024)",
                            ));
                        }
                        let doc = self.store.doc(n.doc);
                        b.copy_subtree(doc, &self.store.names, n.idx);
                        continue;
                    }
                    if let Some(t) = pending_text.take() {
                        b.text(&t);
                    }
                    seen_child = true;
                    let doc = self.store.doc(n.doc);
                    b.copy_subtree(doc, &self.store.names, n.idx);
                }
            }
        }
        if let Some(t) = pending_text {
            b.text(&t);
        }
        Ok(())
    }
}

/// A `for`-return clause amenable to Bulk RPC: a chain of local `let`s
/// ending in an `Execute` with a literal peer.
pub(crate) struct BulkPlan<'a> {
    pub(crate) lets: Vec<(&'a str, &'a Expr)>,
    pub(crate) peer: String,
    pub(crate) params: &'a [XrpcParam],
    pub(crate) body: &'a Expr,
    pub(crate) projection: Option<&'a ExecProjection>,
}

pub(crate) fn bulk_pattern(ret: &Expr) -> Option<BulkPlan<'_>> {
    let mut lets = Vec::new();
    let mut cur = ret;
    loop {
        match cur {
            Expr::Let { var, value, ret } => {
                lets.push((var.as_str(), value.as_ref()));
                cur = ret;
            }
            Expr::Execute { peer, params, body, projection } => {
                let Expr::Literal(a) = peer.as_ref() else {
                    return None; // peer could vary per iteration
                };
                return Some(BulkPlan {
                    lets,
                    peer: a.to_lexical(),
                    params,
                    body,
                    projection: projection.as_deref(),
                });
            }
            _ => return None,
        }
    }
}

/// Returns the element indices of a `Sequence` that form a scatter round:
/// `Execute` expressions with a literal peer. Engages only when at least two
/// such calls target at least two distinct peers — otherwise there is
/// nothing to overlap.
pub(crate) fn sequence_scatter(es: &[Expr]) -> Option<Vec<usize>> {
    let mut idxs = Vec::new();
    let mut peers = Vec::new();
    for (i, e) in es.iter().enumerate() {
        if let Expr::Execute { peer, .. } = e {
            if let Expr::Literal(a) = peer.as_ref() {
                idxs.push(i);
                let p = a.to_lexical();
                if !peers.contains(&p) {
                    peers.push(p);
                }
            }
        }
    }
    (idxs.len() >= 2 && peers.len() >= 2).then_some(idxs)
}

/// The literal peer of an `Execute` eligible for scattering, if any.
pub(crate) fn scatter_exec_peer(e: &Expr) -> Option<String> {
    if let Expr::Execute { peer, .. } = e {
        if let Expr::Literal(a) = peer.as_ref() {
            return Some(a.to_lexical());
        }
    }
    None
}

/// Do `lhs`/`rhs` form a two-call scatter round? Both operands of a binary
/// expression are always evaluated, so two remote calls to distinct peers —
/// the shape distributed code motion leaves behind when it collapses a
/// `let`-chain into `execute(…) ⊕ execute(…)` — can fan out together.
pub(crate) fn binary_scatter(lhs: &Expr, rhs: &Expr) -> bool {
    matches!(
        (scatter_exec_peer(lhs), scatter_exec_peer(rhs)),
        (Some(a), Some(b)) if a != b
    )
}

/// A chain of `let $v := execute at <literal peer> … return …` bindings
/// whose parameters are independent of earlier chain variables — the shape
/// distributed code motion produces for a federated join. The calls can run
/// as one scatter round and bind in order afterwards.
pub(crate) struct LetScatterChain<'a> {
    /// (bound variable, the Execute expression it binds)
    pub(crate) binds: Vec<(&'a str, &'a Expr)>,
    pub(crate) tail: &'a Expr,
}

pub(crate) fn let_scatter(e: &Expr) -> Option<LetScatterChain<'_>> {
    let mut binds: Vec<(&str, &Expr)> = Vec::new();
    let mut peers: Vec<String> = Vec::new();
    let mut cur = e;
    while let Expr::Let { var, value, ret } = cur {
        let Expr::Execute { peer, params, .. } = value.as_ref() else {
            break;
        };
        let Expr::Literal(a) = peer.as_ref() else {
            break;
        };
        // independence: parameters must not read variables bound earlier in
        // this chain (they'd need the earlier call's result first)
        if params.iter().any(|p| binds.iter().any(|(v, _)| *v == p.outer)) {
            break;
        }
        binds.push((var.as_str(), value.as_ref()));
        let p = a.to_lexical();
        if !peers.contains(&p) {
            peers.push(p);
        }
        cur = ret;
    }
    (binds.len() >= 2 && peers.len() >= 2).then_some(LetScatterChain { binds, tail: cur })
}

/// Sizes of every scatter round statically detectable in `e` — the same
/// predicates the evaluator applies at runtime, exposed so the decomposer
/// can tag plans whose XRPC calls will fan out (explain output, tests).
pub fn scatter_rounds(e: &Expr) -> Vec<usize> {
    fn walk(e: &Expr, out: &mut Vec<usize>) {
        if let Expr::Sequence(es) = e {
            if let Some(idxs) = sequence_scatter(es) {
                out.push(idxs.len());
                for (i, child) in es.iter().enumerate() {
                    if !idxs.contains(&i) {
                        walk(child, out);
                    }
                }
                return;
            }
        }
        if let Some(chain) = let_scatter(e) {
            out.push(chain.binds.len());
            walk(chain.tail, out);
            return;
        }
        if let Expr::Comparison { lhs, rhs, .. }
        | Expr::NodeComparison { lhs, rhs, .. }
        | Expr::NodeSet { lhs, rhs, .. }
        | Expr::Arith { lhs, rhs, .. } = e
        {
            if binary_scatter(lhs, rhs) {
                out.push(2);
                return;
            }
        }
        crate::normalize::map_children_infallible(e, &mut |c| {
            walk(c, out);
            c.clone()
        });
    }
    let mut out = Vec::new();
    walk(e, &mut out);
    out
}

impl<'a> Evaluator<'a> {
    /// Binds the parameters of one `Execute` from the current environment
    /// into a [`ScatterCall`].
    fn bind_scatter_call<'e>(&self, exec: &'e Expr) -> EvalResult<ScatterCall<'e>> {
        let Expr::Execute { peer, params, body, projection } = exec else {
            unreachable!("scatter detection only selects Execute expressions");
        };
        let Expr::Literal(a) = peer.as_ref() else {
            unreachable!("scatter detection requires a literal peer");
        };
        let mut bound = Vec::with_capacity(params.len());
        for p in params {
            bound.push((p.var.clone(), self.lookup(&p.outer)?));
        }
        Ok(ScatterCall {
            peer: a.to_lexical(),
            params: bound,
            body,
            projection: projection.as_deref(),
        })
    }

    /// Evaluates the two operands of a binary expression, fanning them out
    /// as a two-call scatter round when both are independent remote calls
    /// to distinct peers.
    fn eval_operand_pair(&mut self, lhs: &Expr, rhs: &Expr) -> EvalResult<(Sequence, Sequence)> {
        let scatter = self.remote.is_some() && binary_scatter(lhs, rhs);
        if scatter {
            let calls = vec![self.bind_scatter_call(lhs)?, self.bind_scatter_call(rhs)?];
            let handler = self.remote.as_mut().expect("scatter path requires a handler");
            let mut gathered = handler.execute_scatter(self.store, &self.static_ctx, &calls)?;
            let r = gathered.pop().expect("two results for two calls");
            let l = gathered.pop().expect("two results for two calls");
            return Ok((l, r));
        }
        Ok((self.eval(lhs)?, self.eval(rhs)?))
    }

    /// Sequence whose `Execute` elements fan out as one scatter round; the
    /// remaining elements evaluate afterwards and everything splices back
    /// in element order.
    fn eval_sequence_scatter(&mut self, es: &[Expr], idxs: &[usize]) -> EvalResult {
        let calls: Vec<ScatterCall<'_>> = idxs
            .iter()
            .map(|&i| self.bind_scatter_call(&es[i]))
            .collect::<EvalResult<_>>()?;
        let handler = self.remote.as_mut().expect("scatter path requires a handler");
        let gathered = handler.execute_scatter(self.store, &self.static_ctx, &calls)?;
        let mut by_idx: Vec<Option<Sequence>> = vec![None; es.len()];
        for (&i, seq) in idxs.iter().zip(gathered) {
            by_idx[i] = Some(seq);
        }
        let mut out = Vec::new();
        for (i, e) in es.iter().enumerate() {
            match by_idx[i].take() {
                Some(seq) => out.extend(seq),
                None => out.extend(self.eval(e)?),
            }
        }
        Ok(out.into())
    }

    /// Let-chain of independent remote calls: scatter the round, then bind
    /// the gathered results in order and evaluate the tail.
    fn eval_let_scatter(&mut self, chain: LetScatterChain<'_>) -> EvalResult {
        let calls: Vec<ScatterCall<'_>> = chain
            .binds
            .iter()
            .map(|(_, exec)| self.bind_scatter_call(exec))
            .collect::<EvalResult<_>>()?;
        let handler = self.remote.as_mut().expect("scatter path requires a handler");
        let gathered = handler.execute_scatter(self.store, &self.static_ctx, &calls)?;
        for ((var, _), seq) in chain.binds.iter().zip(gathered) {
            self.env.push((var.to_string(), seq));
        }
        let r = self.eval(chain.tail);
        for _ in 0..chain.binds.len() {
            self.env.pop();
        }
        r
    }

    fn eval_bulk_for(&mut self, var: &str, input: Sequence, plan: BulkPlan<'_>) -> EvalResult {
        let mut calls: Vec<Vec<(String, Sequence)>> = Vec::with_capacity(input.len());
        for item in input.iter() {
            self.env.push((var.to_string(), Sequence::unit(item.clone())));
            let mut pushed = 1usize;
            let mut bound: EvalResult<Vec<(String, Sequence)>> = Ok(Vec::new());
            for (lv, lval) in &plan.lets {
                match self.eval(lval) {
                    Ok(v) => {
                        self.env.push((lv.to_string(), v));
                        pushed += 1;
                    }
                    Err(e) => {
                        bound = Err(e);
                        break;
                    }
                }
            }
            if bound.is_ok() {
                let mut params = Vec::with_capacity(plan.params.len());
                for p in plan.params {
                    match self.lookup(&p.outer) {
                        Ok(v) => params.push((p.var.clone(), v)),
                        Err(e) => {
                            bound = Err(e);
                            break;
                        }
                    }
                }
                if bound.is_ok() {
                    bound = Ok(params);
                }
            }
            for _ in 0..pushed {
                self.env.pop();
            }
            calls.push(bound?);
        }
        let handler = self.remote.as_mut().expect("bulk path requires a handler");
        let results = handler.execute_bulk(
            self.store,
            &self.static_ctx,
            &plan.peer,
            &calls,
            plan.body,
            plan.projection,
        )?;
        Ok(results.into_iter().flatten().collect())
    }
}

pub(crate) fn single_node(seq: &[Item], what: &str) -> EvalResult<NodeId> {
    match seq {
        [Item::Node(n)] => Ok(*n),
        _ => Err(EvalError::new(format!("{what} requires a single node operand"))),
    }
}

pub(crate) fn compare_order_keys(a: &Option<Atomic>, b: &Option<Atomic>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less, // empty least
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            // numeric if both castable, else string
            if let (Some(nx), Some(ny)) = (to_number(x), to_number(y)) {
                nx.partial_cmp(&ny).unwrap_or(Ordering::Equal)
            } else {
                x.to_lexical().cmp(&y.to_lexical())
            }
        }
    }
}

/// Does `seq` match the sequence type? (typeswitch dispatch).
pub fn matches_seq_type(store: &Store, seq: &[Item], t: &SeqType) -> bool {
    if t.item == ItemType::EmptySequence {
        return seq.is_empty();
    }
    let len_ok = match t.occurrence {
        Occurrence::One => seq.len() == 1,
        Occurrence::Optional => seq.len() <= 1,
        Occurrence::ZeroOrMore => true,
        Occurrence::OneOrMore => !seq.is_empty(),
    };
    if !len_ok {
        return false;
    }
    seq.iter().all(|item| matches_item_type(store, item, &t.item))
}

fn matches_item_type(store: &Store, item: &Item, t: &ItemType) -> bool {
    match (t, item) {
        (ItemType::AnyItem, _) => true,
        (ItemType::AnyNode, Item::Node(_)) => true,
        (ItemType::Element(name), Item::Node(n)) => {
            let doc = store.doc(n.doc);
            doc.kind(n.idx) == NodeKind::Element
                && name
                    .as_ref()
                    .map(|nm| store.names.resolve(doc.name(n.idx)) == nm)
                    .unwrap_or(true)
        }
        (ItemType::Attribute(name), Item::Node(n)) => {
            let doc = store.doc(n.doc);
            doc.kind(n.idx) == NodeKind::Attribute
                && name
                    .as_ref()
                    .map(|nm| store.names.resolve(doc.name(n.idx)) == nm)
                    .unwrap_or(true)
        }
        (ItemType::TextNode, Item::Node(n)) => store.doc(n.doc).kind(n.idx) == NodeKind::Text,
        (ItemType::DocumentNode, Item::Node(n)) => {
            store.doc(n.doc).kind(n.idx) == NodeKind::Document
        }
        (ItemType::AtomicStr, Item::Atom(Atomic::Str(_))) => true,
        (ItemType::AtomicInt, Item::Atom(Atomic::Int(_))) => true,
        (ItemType::AtomicDbl, Item::Atom(Atomic::Dbl(_))) => true,
        (ItemType::AtomicBool, Item::Atom(Atomic::Bool(_))) => true,
        (ItemType::AtomicUntyped, Item::Atom(Atomic::Untyped(_))) => true,
        _ => false,
    }
}

/// Evaluates a whole module against a store with local-only resolution.
/// The main entry point for single-peer ("local execution") semantics.
pub fn eval_query(store: &mut Store, module: &QueryModule) -> EvalResult {
    eval_query_with_indexes(store, module, true)
}

/// [`eval_query`] with the indexed path-step engine explicitly toggled —
/// the hook the equivalence tests and the `paths` bench compare through.
pub fn eval_query_with_indexes(
    store: &mut Store,
    module: &QueryModule,
    use_indexes: bool,
) -> EvalResult {
    let mut resolver = LocalResolver;
    let mut ev =
        Evaluator::new(store, &module.functions, &mut resolver).with_indexes(use_indexes);
    ev.eval(&module.body)
}
