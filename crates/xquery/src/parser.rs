//! Recursive-descent parser for the XQuery surface syntax.
//!
//! The accepted language is the extended XCore of Table II plus pragmatic
//! sugar: multi-clause FLWOR with `where`/`order by` (desugared to nested
//! `for`/`let`/`if`/OrderExpr during parsing, following the paper's Qc2
//! normalization), abbreviated steps (`@x`, `..`, `//`, bare name tests),
//! predicates, `and`/`or`, arithmetic, user-defined function declarations,
//! and both XRPC surface forms:
//!
//! * `execute at {Expr} { fcn(Args) }` — the real XRPC syntax; the function
//!   body is inlined at parse time and arguments become shipped parameters,
//! * `execute at {Expr} params ($p := $v, …) { Body }` — the presentation
//!   syntax of rules 27–28, also what [`crate::ast::print_expr`] emits, so
//!   printed queries re-parse.

use std::fmt;

use xqd_xml::Axis;

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { offset: e.offset, message: e.message }
    }
}

type Result<T> = std::result::Result<T, ParseError>;

struct Parser {
    toks: Vec<(Token, usize)>,
    pos: usize,
    functions: Vec<FunctionDef>,
    fresh: u32,
}

/// Parses a complete query module (function declarations + body).
pub fn parse_query(input: &str) -> Result<QueryModule> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0, functions: Vec::new(), fresh: 0 };
    p.parse_module()
}

/// Parses a single expression (no prolog).
pub fn parse_expr_str(input: &str) -> Result<Expr> {
    let m = parse_query(input)?;
    if m.functions.is_empty() {
        Ok(m.body)
    } else {
        Err(ParseError { offset: 0, message: "expected a bare expression, found declarations".into() })
    }
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Token {
        self.toks.get(self.pos + 1).map(|(t, _)| t).unwrap_or(&Token::Eof)
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseError { offset: self.offset(), message: msg.into() })
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t}, found {}", self.peek()))
        }
    }

    /// Consumes the keyword `kw` (a contextual Name token) or errors.
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Token::Name(n) if n == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected keyword '{kw}', found {other}")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Name(n) if n == kw)
    }

    fn expect_name(&mut self) -> Result<String> {
        match self.bump() {
            Token::Name(n) => Ok(n),
            other => {
                self.pos -= 1;
                self.err(format!("expected name, found {other}"))
            }
        }
    }

    fn expect_var(&mut self) -> Result<String> {
        self.expect(&Token::Dollar)?;
        self.expect_name()
    }

    fn fresh_var(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("{hint}_{}", self.fresh)
    }

    // -- module ------------------------------------------------------------

    fn parse_module(&mut self) -> Result<QueryModule> {
        while self.at_kw("declare") {
            let f = self.parse_function_decl()?;
            if self.functions.iter().any(|g| g.name == f.name) {
                return self.err(format!("duplicate function declaration {}", f.name));
            }
            self.functions.push(f);
        }
        let body = self.parse_expr()?;
        if self.peek() != &Token::Eof {
            return self.err(format!("trailing input: {}", self.peek()));
        }
        Ok(QueryModule { functions: std::mem::take(&mut self.functions), body })
    }

    fn parse_function_decl(&mut self) -> Result<FunctionDef> {
        self.expect_kw("declare")?;
        self.expect_kw("function")?;
        let name = self.expect_name()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                let v = self.expect_var()?;
                let ty = if self.at_kw("as") {
                    self.bump();
                    Some(self.parse_seq_type()?)
                } else {
                    None
                };
                params.push((v, ty));
                if self.peek() == &Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let return_type = if self.at_kw("as") {
            self.bump();
            Some(self.parse_seq_type()?)
        } else {
            None
        };
        self.expect(&Token::LBrace)?;
        let body = self.parse_expr()?;
        self.expect(&Token::RBrace)?;
        self.expect(&Token::Semicolon)?;
        Ok(FunctionDef { name, params, return_type, body })
    }

    fn parse_seq_type(&mut self) -> Result<SeqType> {
        let name = self.expect_name()?;
        let item = match name.as_str() {
            "empty-sequence" => {
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                return Ok(SeqType { item: ItemType::EmptySequence, occurrence: Occurrence::One });
            }
            "item" => {
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                ItemType::AnyItem
            }
            "node" => {
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                ItemType::AnyNode
            }
            "text" => {
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                ItemType::TextNode
            }
            "document-node" => {
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                ItemType::DocumentNode
            }
            "element" | "attribute" => {
                self.expect(&Token::LParen)?;
                let n = if let Token::Name(_) = self.peek() {
                    Some(self.expect_name()?)
                } else if self.peek() == &Token::Star {
                    self.bump();
                    None
                } else {
                    None
                };
                self.expect(&Token::RParen)?;
                if name == "element" {
                    ItemType::Element(n)
                } else {
                    ItemType::Attribute(n)
                }
            }
            "xs:string" => ItemType::AtomicStr,
            "xs:integer" | "xs:int" | "xs:long" => ItemType::AtomicInt,
            "xs:double" | "xs:decimal" | "xs:float" => ItemType::AtomicDbl,
            "xs:boolean" => ItemType::AtomicBool,
            "xs:untypedAtomic" => ItemType::AtomicUntyped,
            "xs:anyAtomicType" => ItemType::AnyItem,
            other => return self.err(format!("unsupported sequence type {other}")),
        };
        let occurrence = match self.peek() {
            Token::Question => {
                self.bump();
                Occurrence::Optional
            }
            Token::Star => {
                self.bump();
                Occurrence::ZeroOrMore
            }
            Token::Plus => {
                self.bump();
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        };
        Ok(SeqType { item, occurrence })
    }

    // -- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        let first = self.parse_single()?;
        if self.peek() != &Token::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.peek() == &Token::Comma {
            self.bump();
            items.push(self.parse_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn parse_single(&mut self) -> Result<Expr> {
        self.parse_single_inner(true)
    }

    /// `allow_order` disambiguates the standalone OrderExpr of XCore rule 15
    /// (`ExprSingle order by OrderSpecs`) from FLWOR's own `order by`
    /// clause: clause sources and order keys are parsed with it off.
    fn parse_single_inner(&mut self, allow_order: bool) -> Result<Expr> {
        let mut e = match self.peek() {
            Token::Name(n) => match n.as_str() {
                "for" | "let" => return self.parse_flwor(),
                "if" if self.peek2() == &Token::LParen => self.parse_if()?,
                "typeswitch" if self.peek2() == &Token::LParen => self.parse_typeswitch()?,
                "execute" => self.parse_execute()?,
                "some" | "every" if self.peek2() == &Token::Dollar => {
                    self.parse_quantified()?
                }
                _ => self.parse_or()?,
            },
            _ => self.parse_or()?,
        };
        if allow_order && self.at_kw("order") && matches!(self.peek2(), Token::Name(b) if b == "by")
        {
            self.bump();
            self.bump();
            let specs = self.parse_order_specs()?;
            e = Expr::OrderBy { input: e.boxed(), specs };
        }
        Ok(e)
    }

    /// Quantified expressions desugar to XCore per the W3C normalization:
    /// `some $x in E satisfies P`  →  `exists(for $x in E return
    /// if (P) then 1 else ())`, and `every` via double negation.
    fn parse_quantified(&mut self) -> Result<Expr> {
        let every = self.at_kw("every");
        self.bump();
        let mut bindings = Vec::new();
        loop {
            let v = self.expect_var()?;
            self.expect_kw("in")?;
            let seq = self.parse_single_inner(false)?;
            bindings.push((v, seq));
            if self.peek() == &Token::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_kw("satisfies")?;
        let pred = self.parse_single()?;
        // innermost body: if (P) then 1 else ()   (for `every`: if (not P))
        let cond = if every {
            Expr::FunCall { name: "not".into(), args: vec![pred] }
        } else {
            pred
        };
        let mut body = Expr::If {
            cond: cond.boxed(),
            then: Expr::int(1).boxed(),
            els: Expr::Empty.boxed(),
        };
        for (var, seq) in bindings.into_iter().rev() {
            body = Expr::For { var, seq: seq.boxed(), ret: body.boxed() };
        }
        let exists = Expr::FunCall { name: "exists".into(), args: vec![body] };
        Ok(if every {
            Expr::FunCall { name: "not".into(), args: vec![exists] }
        } else {
            exists
        })
    }

    fn parse_order_specs(&mut self) -> Result<Vec<OrderSpec>> {
        let mut specs = Vec::new();
        loop {
            let key = self.parse_single_inner(false)?;
            let descending = if self.at_kw("descending") {
                self.bump();
                true
            } else {
                if self.at_kw("ascending") {
                    self.bump();
                }
                false
            };
            specs.push(OrderSpec { key, descending });
            if self.peek() == &Token::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(specs)
    }

    fn parse_flwor(&mut self) -> Result<Expr> {
        enum Clause {
            For(String, Expr),
            Let(String, Expr),
        }
        let mut clauses = Vec::new();
        loop {
            if self.at_kw("for") {
                self.bump();
                loop {
                    let v = self.expect_var()?;
                    self.expect_kw("in")?;
                    let seq = self.parse_single_inner(false)?;
                    clauses.push(Clause::For(v, seq));
                    if self.peek() == &Token::Comma {
                        self.bump();
                        continue;
                    }
                    break;
                }
            } else if self.at_kw("let") {
                self.bump();
                loop {
                    let v = self.expect_var()?;
                    self.expect(&Token::Assign)?;
                    let value = self.parse_single_inner(false)?;
                    clauses.push(Clause::Let(v, value));
                    if self.peek() == &Token::Comma {
                        self.bump();
                        continue;
                    }
                    break;
                }
            } else {
                break;
            }
        }
        let where_cond = if self.at_kw("where") {
            self.bump();
            Some(self.parse_single()?)
        } else {
            None
        };
        let mut order_specs = Vec::new();
        if self.at_kw("order") {
            self.bump();
            self.expect_kw("by")?;
            order_specs = self.parse_order_specs()?;
        }
        self.expect_kw("return")?;
        let ret = self.parse_single()?;

        // Desugar: where → if; clauses nest outside-in. `order by` sorts the
        // *input* of the innermost `for` (keys rewritten to the context
        // item), which is exactly XQuery tuple-ordering when the keys depend
        // only on that loop variable — the supported subset, matching the
        // paper's standalone OrderExpr (rule 15).
        let mut body = match where_cond {
            Some(cond) => Expr::If { cond: cond.boxed(), then: ret.boxed(), els: Expr::Empty.boxed() },
            None => ret,
        };
        let mut pending_order = if order_specs.is_empty() { None } else { Some(order_specs) };
        if pending_order.is_some() && !clauses.iter().any(|c| matches!(c, Clause::For(..))) {
            return self.err("order by requires at least one for clause");
        }
        for c in clauses.into_iter().rev() {
            body = match c {
                Clause::For(var, seq) => {
                    let seq = match pending_order.take() {
                        Some(specs) => {
                            let specs = specs
                                .into_iter()
                                .map(|mut s| {
                                    s.key = substitute_var_with_context(&s.key, &var);
                                    s
                                })
                                .collect();
                            Expr::OrderBy { input: seq.boxed(), specs }
                        }
                        None => seq,
                    };
                    Expr::For { var, seq: seq.boxed(), ret: body.boxed() }
                }
                Clause::Let(var, value) => {
                    Expr::Let { var, value: value.boxed(), ret: body.boxed() }
                }
            };
        }
        Ok(body)
    }

    fn parse_if(&mut self) -> Result<Expr> {
        self.expect_kw("if")?;
        self.expect(&Token::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        self.expect_kw("then")?;
        let then = self.parse_single()?;
        self.expect_kw("else")?;
        let els = self.parse_single()?;
        Ok(Expr::If { cond: cond.boxed(), then: then.boxed(), els: els.boxed() })
    }

    fn parse_typeswitch(&mut self) -> Result<Expr> {
        self.expect_kw("typeswitch")?;
        self.expect(&Token::LParen)?;
        let input = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        let mut cases = Vec::new();
        while self.at_kw("case") {
            self.bump();
            let var = self.expect_var()?;
            self.expect_kw("as")?;
            let seq_type = self.parse_seq_type()?;
            self.expect_kw("return")?;
            let body = self.parse_single()?;
            cases.push(CaseClause { var, seq_type, body });
        }
        if cases.is_empty() {
            return self.err("typeswitch requires at least one case clause");
        }
        self.expect_kw("default")?;
        let default_var = self.expect_var()?;
        self.expect_kw("return")?;
        let default = self.parse_single()?;
        Ok(Expr::Typeswitch {
            input: input.boxed(),
            cases,
            default_var,
            default: default.boxed(),
        })
    }

    fn parse_execute(&mut self) -> Result<Expr> {
        self.expect_kw("execute")?;
        self.expect_kw("at")?;
        self.expect(&Token::LBrace)?;
        let peer = self.parse_expr()?;
        self.expect(&Token::RBrace)?;
        if self.at_kw("params") {
            // presentation syntax of rules 27-28
            self.bump();
            self.expect(&Token::LParen)?;
            let mut params = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    let var = self.expect_var()?;
                    self.expect(&Token::Assign)?;
                    let outer = self.expect_var()?;
                    params.push(XrpcParam { var, outer });
                    if self.peek() == &Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::LBrace)?;
            let body = self.parse_expr()?;
            self.expect(&Token::RBrace)?;
            return Ok(Expr::Execute { peer: peer.boxed(), params, body: body.boxed(), projection: None });
        }
        // real XRPC syntax: { fcn(args) } — inline the declared function
        self.expect(&Token::LBrace)?;
        let fname = self.expect_name()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                args.push(self.parse_single()?);
                if self.peek() == &Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::RBrace)?;
        let func = self
            .functions
            .iter()
            .find(|f| f.name == fname)
            .cloned()
            .ok_or_else(|| ParseError {
                offset: self.offset(),
                message: format!("execute at calls undeclared function {fname}"),
            })?;
        if func.params.len() != args.len() {
            return self.err(format!(
                "{fname} expects {} arguments, got {}",
                func.params.len(),
                args.len()
            ));
        }
        // Evaluate arguments locally in let-bindings, ship them as params.
        let mut params = Vec::new();
        let mut lets: Vec<(String, Expr)> = Vec::new();
        for ((formal, _ty), arg) in func.params.iter().zip(args) {
            let outer = self.fresh_var("xrpcarg");
            params.push(XrpcParam { var: formal.clone(), outer: outer.clone() });
            lets.push((outer, arg));
        }
        let mut result = Expr::Execute {
            peer: peer.boxed(),
            params,
            body: func.body.clone().boxed(),
            projection: None,
        };
        for (var, value) in lets.into_iter().rev() {
            result = Expr::Let { var, value: value.boxed(), ret: result.boxed() };
        }
        Ok(result)
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.at_kw("or") {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Or(lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_comparison()?;
        while self.at_kw("and") {
            self.bump();
            let rhs = self.parse_comparison()?;
            lhs = Expr::And(lhs.boxed(), rhs.boxed());
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Token::Eq => Some(CompOp::Eq),
            Token::Ne => Some(CompOp::Ne),
            Token::Lt => Some(CompOp::Lt),
            Token::Le => Some(CompOp::Le),
            Token::Gt => Some(CompOp::Gt),
            Token::Ge => Some(CompOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::Comparison { op, lhs: lhs.boxed(), rhs: rhs.boxed() });
        }
        let nop = match self.peek() {
            Token::Before => Some(NodeCompOp::Before),
            Token::After => Some(NodeCompOp::After),
            Token::Name(n) if n == "is" => Some(NodeCompOp::Is),
            _ => None,
        };
        if let Some(op) = nop {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::NodeComparison { op, lhs: lhs.boxed(), rhs: rhs.boxed() });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Arith { op, lhs: lhs.boxed(), rhs: rhs.boxed() };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_setop()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Name(n) if n == "div" => ArithOp::Div,
                Token::Name(n) if n == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_setop()?;
            lhs = Expr::Arith { op, lhs: lhs.boxed(), rhs: rhs.boxed() };
        }
        Ok(lhs)
    }

    fn parse_setop(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Pipe => NodeSetOp::Union,
                Token::Name(n) if n == "union" => NodeSetOp::Union,
                Token::Name(n) if n == "intersect" => NodeSetOp::Intersect,
                Token::Name(n) if n == "except" => NodeSetOp::Except,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::NodeSet { op, lhs: lhs.boxed(), rhs: rhs.boxed() };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek() == &Token::Minus {
            self.bump();
            let operand = self.parse_unary()?;
            return Ok(Expr::Arith {
                op: ArithOp::Sub,
                lhs: Expr::int(0).boxed(),
                rhs: operand.boxed(),
            });
        }
        if self.peek() == &Token::Plus {
            self.bump();
            return self.parse_unary();
        }
        self.parse_path()
    }

    // -- paths ---------------------------------------------------------------

    fn parse_path(&mut self) -> Result<Expr> {
        match self.peek() {
            Token::Slash => {
                self.bump();
                let mut steps = Vec::new();
                if self.starts_step() {
                    steps.push(self.parse_step()?);
                    self.parse_more_steps(&mut steps)?;
                }
                Ok(Expr::Path { start: None, steps })
            }
            Token::DoubleSlash => {
                self.bump();
                let mut steps =
                    vec![Step::simple(Axis::DescendantOrSelf, NameTest::AnyKind)];
                steps.push(self.parse_step()?);
                self.parse_more_steps(&mut steps)?;
                Ok(Expr::Path { start: None, steps })
            }
            _ => {
                if self.starts_step() {
                    let mut steps = vec![self.parse_step()?];
                    self.parse_more_steps(&mut steps)?;
                    return Ok(Expr::Path {
                        start: Some(Expr::ContextItem.boxed()),
                        steps,
                    });
                }
                let primary = self.parse_postfix()?;
                if matches!(self.peek(), Token::Slash | Token::DoubleSlash) {
                    let mut steps = Vec::new();
                    self.parse_more_steps(&mut steps)?;
                    return Ok(Expr::Path { start: Some(primary.boxed()), steps });
                }
                Ok(primary)
            }
        }
    }

    fn parse_more_steps(&mut self, steps: &mut Vec<Step>) -> Result<()> {
        loop {
            match self.peek() {
                Token::Slash => {
                    self.bump();
                    steps.push(self.parse_step()?);
                }
                Token::DoubleSlash => {
                    self.bump();
                    steps.push(Step::simple(Axis::DescendantOrSelf, NameTest::AnyKind));
                    steps.push(self.parse_step()?);
                }
                _ => return Ok(()),
            }
        }
    }

    /// Is the upcoming token sequence an axis step (rather than a primary)?
    fn starts_step(&self) -> bool {
        match self.peek() {
            Token::At | Token::DotDot => true,
            Token::Star => true,
            Token::Name(n) => {
                match self.peek2() {
                    Token::AxisSep => Axis::from_name(n).is_some(),
                    Token::LParen => matches!(n.as_str(), "node" | "text" | "comment"),
                    // constructors and control keywords handled elsewhere;
                    // a bare name is a child-axis name test
                    _ => !matches!(
                        n.as_str(),
                        "element" | "attribute" | "document" | "text"
                    ) || !matches!(self.peek2(), Token::LBrace | Token::Name(_)),
                }
            }
            _ => false,
        }
    }

    fn parse_step(&mut self) -> Result<Step> {
        let mut step = match self.peek().clone() {
            Token::At => {
                self.bump();
                let test = self.parse_node_test()?;
                Step::simple(Axis::Attribute, test)
            }
            Token::DotDot => {
                self.bump();
                Step::simple(Axis::Parent, NameTest::AnyKind)
            }
            Token::Star => {
                self.bump();
                Step::simple(Axis::Child, NameTest::Wildcard)
            }
            Token::Name(n) => {
                if self.peek2() == &Token::AxisSep {
                    let axis = Axis::from_name(&n)
                        .ok_or_else(|| ParseError {
                            offset: self.offset(),
                            message: format!("unknown axis {n}"),
                        })?;
                    self.bump();
                    self.bump();
                    let test = self.parse_node_test()?;
                    Step::simple(axis, test)
                } else {
                    let test = self.parse_node_test()?;
                    // @-less attribute() kind tests do not exist in our
                    // subset; bare tests use the child axis
                    Step::simple(Axis::Child, test)
                }
            }
            other => return self.err(format!("expected axis step, found {other}")),
        };
        while self.peek() == &Token::LBracket {
            self.bump();
            let pred = self.parse_expr()?;
            self.expect(&Token::RBracket)?;
            step.predicates.push(pred);
        }
        Ok(step)
    }

    fn parse_node_test(&mut self) -> Result<NameTest> {
        match self.bump() {
            Token::Star => Ok(NameTest::Wildcard),
            Token::Name(n) => {
                if self.peek() == &Token::LParen
                    && matches!(n.as_str(), "node" | "text" | "comment")
                {
                    self.bump();
                    self.expect(&Token::RParen)?;
                    Ok(match n.as_str() {
                        "node" => NameTest::AnyKind,
                        "text" => NameTest::Text,
                        _ => NameTest::Comment,
                    })
                } else {
                    Ok(NameTest::Name(n))
                }
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected node test, found {other}"))
            }
        }
    }

    // -- primaries -----------------------------------------------------------

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        while self.peek() == &Token::LBracket {
            self.bump();
            let pred = self.parse_expr()?;
            self.expect(&Token::RBracket)?;
            e = Expr::Filter { input: e.boxed(), predicate: pred.boxed() };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::StringLit(s) => {
                self.bump();
                Ok(Expr::Literal(Atomic::Str(s)))
            }
            Token::IntLit(i) => {
                self.bump();
                Ok(Expr::Literal(Atomic::Int(i)))
            }
            Token::DblLit(d) => {
                self.bump();
                Ok(Expr::Literal(Atomic::Dbl(d)))
            }
            Token::Dollar => {
                self.bump();
                let v = self.expect_name()?;
                Ok(Expr::VarRef(v))
            }
            Token::Dot => {
                self.bump();
                Ok(Expr::ContextItem)
            }
            Token::LParen => {
                self.bump();
                if self.peek() == &Token::RParen {
                    self.bump();
                    return Ok(Expr::Empty);
                }
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Name(n) => match n.as_str() {
                "document" if self.peek2() == &Token::LBrace => {
                    self.bump();
                    self.expect(&Token::LBrace)?;
                    let content = self.parse_expr()?;
                    self.expect(&Token::RBrace)?;
                    Ok(Expr::Construct(Constructor::Document { content: content.boxed() }))
                }
                "text" if self.peek2() == &Token::LBrace => {
                    self.bump();
                    self.expect(&Token::LBrace)?;
                    let content = self.parse_expr()?;
                    self.expect(&Token::RBrace)?;
                    Ok(Expr::Construct(Constructor::Text { content: content.boxed() }))
                }
                "element" | "attribute"
                    if matches!(self.peek2(), Token::Name(_) | Token::LBrace) =>
                {
                    let kind = n;
                    self.bump();
                    let name = if self.peek() == &Token::LBrace {
                        self.bump();
                        let e = self.parse_expr()?;
                        self.expect(&Token::RBrace)?;
                        ElemName::Computed(e.boxed())
                    } else {
                        ElemName::Static(self.expect_name()?)
                    };
                    self.expect(&Token::LBrace)?;
                    let content = if self.peek() == &Token::RBrace {
                        Expr::Empty
                    } else {
                        self.parse_expr()?
                    };
                    self.expect(&Token::RBrace)?;
                    Ok(Expr::Construct(if kind == "element" {
                        Constructor::Element { name, content: content.boxed() }
                    } else {
                        Constructor::Attribute { name, content: content.boxed() }
                    }))
                }
                _ if self.peek2() == &Token::LParen => {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        loop {
                            args.push(self.parse_single()?);
                            if self.peek() == &Token::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::FunCall { name: n, args })
                }
                _ => self.err(format!("unexpected name {n} in expression position")),
            },
            other => self.err(format!("unexpected token {other}")),
        }
    }
}

/// Rewrites `$var` references to the context item (used for `order by`
/// key desugaring). Stops at shadowing rebinds.
fn substitute_var_with_context(e: &Expr, var: &str) -> Expr {
    fn subst(e: &Expr, var: &str) -> Expr {
        match e {
            Expr::VarRef(v) if v == var => Expr::ContextItem,
            Expr::For { var: v, seq, ret } => Expr::For {
                var: v.clone(),
                seq: subst(seq, var).boxed(),
                ret: if v == var { ret.clone() } else { subst(ret, var).boxed() },
            },
            Expr::Let { var: v, value, ret } => Expr::Let {
                var: v.clone(),
                value: subst(value, var).boxed(),
                ret: if v == var { ret.clone() } else { subst(ret, var).boxed() },
            },
            Expr::Path { start, steps } => Expr::Path {
                start: start.as_ref().map(|s| subst(s, var).boxed()),
                steps: steps
                    .iter()
                    .map(|st| Step {
                        axis: st.axis,
                        test: st.test.clone(),
                        predicates: st.predicates.iter().map(|p| subst(p, var)).collect(),
                    })
                    .collect(),
            },
            Expr::Comparison { op, lhs, rhs } => Expr::Comparison {
                op: *op,
                lhs: subst(lhs, var).boxed(),
                rhs: subst(rhs, var).boxed(),
            },
            Expr::FunCall { name, args } => Expr::FunCall {
                name: name.clone(),
                args: args.iter().map(|a| subst(a, var)).collect(),
            },
            other => other.clone(),
        }
    }
    subst(e, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(input: &str) -> Expr {
        parse_expr_str(input).unwrap_or_else(|e| panic!("parse failed for {input:?}: {e}"))
    }

    #[test]
    fn literals_and_sequences() {
        assert_eq!(p("42"), Expr::int(42));
        assert_eq!(p("\"hi\""), Expr::str("hi"));
        assert_eq!(p("()"), Expr::Empty);
        assert_eq!(p("(1, 2)"), Expr::Sequence(vec![Expr::int(1), Expr::int(2)]));
        assert_eq!(p("(1)"), Expr::int(1));
        assert_eq!(p("1.5"), Expr::Literal(Atomic::Dbl(1.5)));
    }

    #[test]
    fn paths_abbreviated() {
        let e = p("doc(\"d.xml\")//person/@id");
        match &e {
            Expr::Path { start, steps } => {
                assert!(matches!(start.as_deref(), Some(Expr::FunCall { name, .. }) if name == "doc"));
                assert_eq!(steps.len(), 3);
                assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
                assert_eq!(steps[0].test, NameTest::AnyKind);
                assert_eq!(steps[1].axis, Axis::Child);
                assert_eq!(steps[1].test, NameTest::Name("person".into()));
                assert_eq!(steps[2].axis, Axis::Attribute);
                assert_eq!(steps[2].test, NameTest::Name("id".into()));
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn explicit_axes() {
        let e = p("$x/parent::a/ancestor-or-self::node()");
        match &e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].axis, Axis::Parent);
                assert_eq!(steps[1].axis, Axis::AncestorOrSelf);
                assert_eq!(steps[1].test, NameTest::AnyKind);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relative_path_uses_context_item() {
        let e = p("$s[tutor = $s/name]");
        match &e {
            Expr::Filter { predicate, .. } => match predicate.as_ref() {
                Expr::Comparison { lhs, .. } => match lhs.as_ref() {
                    Expr::Path { start, steps } => {
                        assert_eq!(start.as_deref(), Some(&Expr::ContextItem));
                        assert_eq!(steps[0].test, NameTest::Name("tutor".into()));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flwor_desugars_to_core() {
        let e = p("for $x in (1,2) let $y := $x where $y = 1 return $y");
        match &e {
            Expr::For { var, ret, .. } => {
                assert_eq!(var, "x");
                match ret.as_ref() {
                    Expr::Let { var, ret, .. } => {
                        assert_eq!(var, "y");
                        assert!(matches!(ret.as_ref(), Expr::If { .. }));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_binding_for() {
        let e = p("for $x in (1), $y in (2) return ($x, $y)");
        match &e {
            Expr::For { var, ret, .. } => {
                assert_eq!(var, "x");
                assert!(matches!(ret.as_ref(), Expr::For { var, .. } if var == "y"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_rewrites_loop_var_to_context() {
        let e = p("for $x in (3,1,2) order by $x return $x");
        match &e {
            Expr::For { seq, .. } => match seq.as_ref() {
                Expr::OrderBy { input, specs } => {
                    assert!(matches!(input.as_ref(), Expr::Sequence(_)));
                    assert_eq!(specs.len(), 1);
                    assert_eq!(specs[0].key, Expr::ContextItem);
                    assert!(!specs[0].descending);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_comparisons() {
        assert!(matches!(
            p("$a is $b"),
            Expr::NodeComparison { op: NodeCompOp::Is, .. }
        ));
        assert!(matches!(
            p("$a << $b"),
            Expr::NodeComparison { op: NodeCompOp::Before, .. }
        ));
        assert!(matches!(
            p("$a >> $b"),
            Expr::NodeComparison { op: NodeCompOp::After, .. }
        ));
    }

    #[test]
    fn set_operations() {
        assert!(matches!(
            p("$a union $b"),
            Expr::NodeSet { op: NodeSetOp::Union, .. }
        ));
        assert!(matches!(p("$a | $b"), Expr::NodeSet { op: NodeSetOp::Union, .. }));
        assert!(matches!(
            p("$a//node() intersect $b//node()"),
            Expr::NodeSet { op: NodeSetOp::Intersect, .. }
        ));
        assert!(matches!(
            p("$a except $b"),
            Expr::NodeSet { op: NodeSetOp::Except, .. }
        ));
    }

    #[test]
    fn and_or_arith_precedence() {
        // a = 1 and b = 2 or c = 3  →  Or(And(=,=), =)
        let e = p("$a = 1 and $b = 2 or $c = 3");
        assert!(matches!(e, Expr::Or(..)));
        let e = p("1 + 2 * 3");
        match e {
            Expr::Arith { op: ArithOp::Add, rhs, .. } => {
                assert!(matches!(rhs.as_ref(), Expr::Arith { op: ArithOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constructors() {
        assert!(matches!(
            p("element person { \"bob\" }"),
            Expr::Construct(Constructor::Element { name: ElemName::Static(_), .. })
        ));
        assert!(matches!(
            p("element { $n } { () }"),
            Expr::Construct(Constructor::Element { name: ElemName::Computed(_), .. })
        ));
        assert!(matches!(
            p("document { element a {()} }"),
            Expr::Construct(Constructor::Document { .. })
        ));
        assert!(matches!(
            p("attribute id { \"7\" }"),
            Expr::Construct(Constructor::Attribute { .. })
        ));
        assert!(matches!(p("text { \"x\" }"), Expr::Construct(Constructor::Text { .. })));
    }

    #[test]
    fn typeswitch_parses() {
        let e = p("typeswitch ($x) case $n as node() return $n default $d return ()");
        match e {
            Expr::Typeswitch { cases, default_var, .. } => {
                assert_eq!(cases.len(), 1);
                assert_eq!(cases[0].var, "n");
                assert_eq!(default_var, "d");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_declarations_and_execute_inline() {
        let m = parse_query(
            "declare function fcn($n as xs:string) as xs:boolean { $n = \"x\" }; \
             execute at { \"peer1\" } { fcn(\"y\") }",
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
        // execute desugars to let $xrpcarg_1 := "y" return Execute{...}
        match &m.body {
            Expr::Let { var, ret, .. } => {
                assert!(var.starts_with("xrpcarg"));
                match ret.as_ref() {
                    Expr::Execute { params, body, .. } => {
                        assert_eq!(params.len(), 1);
                        assert_eq!(params[0].var, "n");
                        assert!(matches!(body.as_ref(), Expr::Comparison { .. }));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_params_form_roundtrips_through_printer() {
        let e = p("execute at { \"p\" } params ($a := $x) { $a/child::b }");
        let printed = e.to_string();
        let reparsed = p(&printed);
        assert_eq!(e, reparsed);
    }

    #[test]
    fn q2_from_the_paper_parses() {
        let q2 = r#"
            (let $s := doc("xrpc://A/students.xml")/people/person,
                 $c := doc("xrpc://B/course42.xml"),
                 $t := $s[tutor = $s/name]
             for $e in $c/enroll/exam
             where $e/@id = $t/id
             return $e)/grade
        "#;
        let e = p(q2);
        match &e {
            Expr::Path { start, steps } => {
                assert!(start.is_some());
                assert_eq!(steps[0].test, NameTest::Name("grade".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn q1_from_the_paper_parses() {
        let q1 = r#"
            declare function makenodes() as node()
            { element a { element b { element c {()} } }/b };
            declare function overlap($l as node(), $r as node()) as xs:boolean
            { not(empty($l//* intersect $r//*)) };
            declare function earlier($l as node(), $r as node()) as node()
            { if ($l << $r) then $l else $r };
            let $bc := makenodes(),
                $abc := $bc/parent::a
            return (for $node in ($bc, $abc)
                    let $first := earlier($bc, $abc)
                    where overlap($first, $node)
                    return $node)//c
        "#;
        let m = parse_query(q1).unwrap();
        assert_eq!(m.functions.len(), 3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_expr_str("for $x in").is_err());
        assert!(parse_expr_str("if (1) then 2").is_err());
        assert!(parse_expr_str("$").is_err());
        assert!(parse_expr_str("1 +").is_err());
        assert!(parse_expr_str("doc(\"x\"").is_err());
        assert!(parse_query("declare function f() { 1 } 2").is_err(), "missing semicolon");
    }

    #[test]
    fn leading_slash_paths() {
        let e = p("/site/people");
        match &e {
            Expr::Path { start: None, steps } => assert_eq!(steps.len(), 2),
            other => panic!("{other:?}"),
        }
        let e = p("//open_auction");
        assert!(matches!(e, Expr::Path { start: None, ref steps } if steps.len() == 2));
    }

    #[test]
    fn unary_minus() {
        let e = p("-$x");
        assert!(matches!(e, Expr::Arith { op: ArithOp::Sub, .. }));
    }

    #[test]
    fn predicates_on_steps() {
        let e = p("$d/person[age < 40]/name");
        match &e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps.len(), 2);
                assert_eq!(steps[0].predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dotdot_step() {
        let e = p("$x/..");
        match &e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].axis, Axis::Parent);
                assert_eq!(steps[0].test, NameTest::AnyKind);
            }
            other => panic!("{other:?}"),
        }
    }
}
