//! Deterministic pseudo-random numbers without external dependencies.
//!
//! The workspace must build and test with zero registry access, so the data
//! generator ([`xqd-xmark`]) and the randomized test suites use this small
//! SplitMix64 generator instead of the `rand` crate. SplitMix64 passes
//! BigCrush, has a full 2^64 period over its state, and — crucially for
//! tests — is trivially reproducible from a single `u64` seed.
//!
//! The API mirrors the subset of `rand` the workspace used: `gen_range`
//! over half-open integer ranges, `gen_bool`, and slice helpers.

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator. Every seed — including 0 — yields a distinct,
    /// full-period stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift rejection
    /// method — unbiased for every bound.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the half-open range `lo..hi` (`hi` exclusive).
    /// Panics if the range is empty, matching `rand`'s contract.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        range.start + self.bounded(range.end - range.start)
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `lo..hi`.
    pub fn gen_range_u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.gen_range(range.start as u64..range.end as u64) as u32
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 significant bits, same construction rand uses for f64 sampling
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniformly chosen element of a non-empty slice, by value.
    pub fn choose<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.gen_range_usize(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the canonical C impl.
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover a width-10 range");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = Rng::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }

    #[test]
    fn uniformity_over_small_range() {
        // chi-square-ish sanity: 8 buckets, 8000 draws, each bucket
        // within 25% of the expectation.
        let mut r = Rng::seed_from_u64(0xDEADBEEF);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range_usize(0..8)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((750..1250).contains(&b), "bucket {i} = {b}");
        }
    }
}
