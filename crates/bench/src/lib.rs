//! # xqd-bench — the Section VII experiment harness
//!
//! One function per figure of the paper's evaluation; both the Criterion
//! benches (`benches/`) and the `experiments` example binary drive these,
//! so the printed series and the measured ones come from the same code.
//!
//! Sizes are scaled down from the paper's 10–160 MB per document (see
//! DESIGN.md): the reproduction target is the *shape* of each figure — who
//! wins, by what factor, and how the series scale — not 2009 wall-clock
//! numbers.

use std::time::{Duration, Instant};

use xqd_core::Strategy;
use xqd_xmark::{document_pair, people_document, XmarkConfig};
use xqd_xml::project::{compute_projection, build_projected, ProjectionInput};
use xqd_xml::{serialize_document, Store};
use xqd_xrpc::{
    ExecOptions, Federation, Metrics, NetworkModel, TenantSpec, WorkloadConfig, WorkloadEngine,
};

/// The Section VII benchmark query (the paper's XMark adaptation of Qn2):
/// persons under 40 from peer1 semijoined against open auctions on peer2,
/// returning the matching annotations' authors.
pub const BENCHMARK_QUERY: &str = r#"
(let $t := (let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
            return for $x in $s return
                if ($x/descendant::age < 40) then $x else ())
 return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
                   return $c/descendant::open_auction)
        return if ($e/child::seller/attribute::person = $t/attribute::id)
               then $e/child::annotation else ())/child::author
"#;

/// Builds the two-peer federation of Section VII with documents of roughly
/// `bytes_per_doc` each (total data = 2 × bytes_per_doc).
pub fn setup_federation(bytes_per_doc: usize, seed: u64) -> Federation {
    let cfg = XmarkConfig::with_target_bytes(bytes_per_doc, seed);
    let (people, auctions) = document_pair(&cfg);
    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document("peer1", "xmk.xml", &people).expect("people doc");
    fed.load_document("peer2", "xmk.auctions.xml", &auctions).expect("auctions doc");
    fed
}

/// One measured benchmark point.
#[derive(Debug, Clone)]
pub struct Point {
    pub strategy: Strategy,
    pub total_doc_bytes: u64,
    pub metrics: Metrics,
    pub result_len: usize,
}

/// Runs the benchmark query under `strategy` on a fresh federation.
///
/// The semi-join rewrite is pinned **off** here: figures 7–9 reproduce the
/// paper's four-strategy ladder as published, and the rewrite would shrink
/// by-fragment/by-projection below their printed series. The `joins` bench
/// below measures the semi-join against this ladder explicitly.
pub fn run_point(bytes_per_doc: usize, strategy: Strategy) -> Point {
    let mut fed = setup_federation(bytes_per_doc, 42);
    fed.set_exec_options(ExecOptions { semijoin: false, ..ExecOptions::default() });
    let total_doc_bytes = fed.total_document_bytes();
    let out = fed.run(BENCHMARK_QUERY, strategy).expect("benchmark query");
    Point { strategy, total_doc_bytes, metrics: out.metrics, result_len: out.result.len() }
}

/// Figure 7 — bandwidth usage: total transferred bytes (documents + SOAP
/// messages) per strategy and document size.
pub fn fig7_bandwidth(sizes: &[usize]) -> Vec<(usize, Vec<Point>)> {
    sizes
        .iter()
        .map(|&s| (s, Strategy::ALL.iter().map(|&st| run_point(s, st)).collect()))
        .collect()
}

/// Figure 8 — query time breakdown at one size: per strategy, the five
/// categories (shred, local exec, (de)serialize, remote exec, network).
pub fn fig8_breakdown(bytes_per_doc: usize) -> Vec<Point> {
    Strategy::ALL.iter().map(|&st| run_point(bytes_per_doc, st)).collect()
}

/// Figure 9 — total execution time per strategy across sizes.
pub fn fig9_scaling(sizes: &[usize]) -> Vec<(usize, Vec<Point>)> {
    fig7_bandwidth(sizes)
}

/// One Figure 10/11 measurement: projected sizes and projection times for
/// compile-time vs runtime projection over one people document.
#[derive(Debug, Clone)]
pub struct ProjectionPoint {
    pub doc_bytes: usize,
    pub compile_time_bytes: usize,
    pub runtime_bytes: usize,
    pub compile_time_cost: Duration,
    pub runtime_cost: Duration,
}

/// Figures 10 & 11 — projection precision and cost.
///
/// Compile-time projection (Marian & Siméon) can only follow the static
/// paths: it keeps **all** `site/people/person` elements (returned) and
/// their `age` descendants (used). Runtime projection starts from the
/// materialized, *filtered* context — only persons whose age passes the
/// predicate — and is therefore more precise by roughly the predicate's
/// selectivity.
pub fn fig10_11_projection(doc_bytes: usize, seed: u64) -> ProjectionPoint {
    fig10_11_projection_with_threshold(doc_bytes, seed, 40)
}

/// [`fig10_11_projection`] with a configurable age threshold — the
/// selectivity knob of the `runtime_vs_compiletime` ablation: the higher
/// the threshold, the less runtime projection can prune beyond the static
/// paths.
pub fn fig10_11_projection_with_threshold(
    doc_bytes: usize,
    seed: u64,
    age_threshold: u32,
) -> ProjectionPoint {
    let cfg = XmarkConfig::with_target_bytes(doc_bytes, seed);
    let xml = people_document(&cfg);
    let mut store = Store::new();
    let doc_id = xqd_xml::parse_document(&mut store, &xml, Some("xmk.xml")).unwrap();

    // shared path machinery: person and age node sets
    let doc = store.doc(doc_id);
    let mut persons = Vec::new();
    let mut ages = Vec::new();
    let person_name = store.names.get("person");
    let age_name = store.names.get("age");
    for i in 0..doc.len() as u32 {
        if Some(doc.name(i)) == person_name {
            persons.push(i);
        } else if Some(doc.name(i)) == age_name {
            ages.push(i);
        }
    }

    // compile-time: all persons returned, ages used
    let t0 = Instant::now();
    let ct_input = ProjectionInput::new(ages.clone(), persons.clone());
    let ct = compute_projection(doc, &ct_input);
    let ct_builder = build_projected(doc, &store.names, &ct, None);
    let mut scratch = Store::new();
    let ct_doc = scratch.attach(ct_builder);
    let ct_xml = serialize_document(scratch.doc(ct_doc), &scratch.names);
    let compile_time_cost = t0.elapsed();

    // runtime: evaluate the predicate first, keep only matching persons
    let t1 = Instant::now();
    let filtered: Vec<u32> = persons
        .iter()
        .copied()
        .filter(|&p| {
            let end = doc.subtree_end(p);
            (p..=end).any(|i| {
                Some(doc.name(i)) == age_name
                    && doc
                        .string_value(i)
                        .parse::<u32>()
                        .map(|a| a < age_threshold)
                        .unwrap_or(false)
            })
        })
        .collect();
    let rt_input = ProjectionInput::new(vec![], filtered);
    let rt = compute_projection(doc, &rt_input);
    let rt_builder = build_projected(doc, &store.names, &rt, None);
    let mut scratch2 = Store::new();
    let rt_doc = scratch2.attach(rt_builder);
    let rt_xml = serialize_document(scratch2.doc(rt_doc), &scratch2.names);
    let runtime_cost = t1.elapsed();

    ProjectionPoint {
        doc_bytes: xml.len(),
        compile_time_bytes: ct_xml.len(),
        runtime_bytes: rt_xml.len(),
        compile_time_cost,
        runtime_cost,
    }
}

/// Human-readable strategy column order used in all printed tables.
pub fn strategy_label(s: Strategy) -> &'static str {
    s.name()
}

// ---------------------------------------------------------------------------
// Scale-out: parallel scatter-gather across 1..8 peers
// ---------------------------------------------------------------------------

/// The scale-out query over `peers` peers: one independent aggregate per
/// peer (persons under 40 in that peer's partition), which decomposes into
/// a single scatter round of `peers` XRPC calls.
pub fn scaleout_query(peers: usize) -> String {
    let subqueries: Vec<String> = (1..=peers)
        .map(|k| {
            format!(
                "count(for $p in doc(\"xrpc://peer{k}/xmk.xml\")\
                 /child::site/child::people/child::person \
                 return if ($p/descendant::age < 40) then $p else ())"
            )
        })
        .collect();
    format!("({})", subqueries.join(", "))
}

/// Builds a federation of `peers` peers, each holding its own XMark people
/// partition of roughly `bytes_per_peer` (distinct seeds per peer).
pub fn scaleout_federation(
    peers: usize,
    bytes_per_peer: usize,
    model: NetworkModel,
) -> Federation {
    let mut fed = Federation::new(model);
    for k in 1..=peers {
        let cfg = XmarkConfig::with_target_bytes(bytes_per_peer, 1000 + k as u64);
        let xml = people_document(&cfg);
        fed.load_document(&format!("peer{k}"), "xmk.xml", &xml)
            .expect("partition doc");
    }
    fed
}

/// One scale-out measurement: the same query and data executed with the
/// scatter round fanned out vs. forced sequential.
#[derive(Debug, Clone)]
pub struct ScaleoutPoint {
    pub peers: usize,
    pub parallel_result: Vec<String>,
    pub sequential_result: Vec<String>,
    pub parallel: Metrics,
    pub sequential: Metrics,
}

impl ScaleoutPoint {
    /// Simulated end-to-end speedup of scatter-gather over the sequential
    /// loop: serialized wall clock over overlapped wall clock.
    pub fn speedup(&self) -> f64 {
        self.sequential.wall_clock_serialized().as_secs_f64()
            / self.parallel.wall_clock_overlapped().as_secs_f64()
    }

    /// One JSON object for the BENCH trajectory (hand-rolled: the workspace
    /// is std-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"peers\": {}, \"speedup\": {:.3}, \
             \"wall_clock_sequential_us\": {}, \"wall_clock_parallel_us\": {}, \
             \"message_bytes\": {}, \"transfers\": {}, \"remote_calls\": {}, \
             \"results_identical\": {}, \"bytes_identical\": {}}}",
            self.peers,
            self.speedup(),
            self.sequential.wall_clock_serialized().as_micros(),
            self.parallel.wall_clock_overlapped().as_micros(),
            self.parallel.message_bytes,
            self.parallel.transfers,
            self.parallel.remote_calls,
            self.parallel_result == self.sequential_result,
            self.parallel.message_bytes == self.sequential.message_bytes,
        )
    }
}

/// Runs the scale-out query on `peers` peers under the WAN model (where
/// latency dominates and overlap pays), both fanned out and sequential.
pub fn scaleout_point(peers: usize, bytes_per_peer: usize) -> ScaleoutPoint {
    let query = scaleout_query(peers);

    let mut par = scaleout_federation(peers, bytes_per_peer, NetworkModel::wan());
    let par_out = par.run(&query, Strategy::ByValue).expect("parallel run");

    let mut seq = scaleout_federation(peers, bytes_per_peer, NetworkModel::wan());
    seq.set_exec_options(ExecOptions { parallel_scatter: false, bulk_workers: 1, ..ExecOptions::default() });
    let seq_out = seq.run(&query, Strategy::ByValue).expect("sequential run");

    ScaleoutPoint {
        peers,
        parallel_result: par_out.result,
        sequential_result: seq_out.result,
        parallel: par_out.metrics,
        sequential: seq_out.metrics,
    }
}

/// The full 1..=8-peer trajectory.
pub fn scaleout(max_peers: usize, bytes_per_peer: usize) -> Vec<ScaleoutPoint> {
    (1..=max_peers).map(|p| scaleout_point(p, bytes_per_peer)).collect()
}

/// The BENCH json trajectory document for a scale-out sweep.
pub fn scaleout_json(points: &[ScaleoutPoint]) -> String {
    let entries: Vec<String> = points.iter().map(|p| format!("    {}", p.to_json())).collect();
    format!(
        "{{\n  \"bench\": \"scaleout\",\n  \"model\": \"wan\",\n  \
         \"query\": \"per-peer person aggregate, one scatter round\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Paths: indexed (staircase-join) vs naive-scan axis steps
// ---------------------------------------------------------------------------

/// The descendant-heavy XMark path queries of the `paths` bench, as
/// `(label, query)` pairs. All run against a single local people document
/// registered as `xmk.xml`.
pub const PATHS_QUERIES: &[(&str, &str)] = &[
    ("descendant-age", r#"count(doc("xmk.xml")/descendant::age)"#),
    (
        "descendant-person-descendant-age",
        r#"count(doc("xmk.xml")/descendant::person/descendant::age)"#,
    ),
    (
        "descendant-person-attribute-id",
        r#"count(doc("xmk.xml")/descendant::person/attribute::id)"#,
    ),
    (
        "child-chain-age",
        r#"count(doc("xmk.xml")/child::site/child::people/child::person/child::profile/child::age)"#,
    ),
    (
        "slashslash-interest-category",
        r#"count(doc("xmk.xml")//interest/attribute::category)"#,
    ),
];

/// One `paths` measurement: a single query at a single document scale,
/// evaluated with the staircase-join fast path off (`scan`) and on
/// (`indexed`) over the *same* store, so node identities are comparable.
#[derive(Debug, Clone)]
pub struct PathsPoint {
    pub query: &'static str,
    pub doc_bytes: usize,
    pub scan_us: u128,
    pub indexed_us: u128,
    pub results_identical: bool,
}

impl PathsPoint {
    /// Scan time over indexed time (>1 means the index wins).
    pub fn speedup(&self) -> f64 {
        self.scan_us as f64 / (self.indexed_us.max(1)) as f64
    }

    /// One JSON object for the BENCH_paths trajectory (hand-rolled: the
    /// workspace is std-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\": \"{}\", \"doc_bytes\": {}, \"scan_us\": {}, \
             \"indexed_us\": {}, \"speedup\": {:.3}, \"results_identical\": {}}}",
            self.query,
            self.doc_bytes,
            self.scan_us,
            self.indexed_us,
            self.speedup(),
            self.results_identical,
        )
    }
}

/// Runs every [`PATHS_QUERIES`] entry at one document scale, taking the
/// minimum of `iters` timed runs per mode (one untimed warmup run per mode
/// first, so lazy name-index construction is not charged to any iteration).
pub fn paths_points_at(target_bytes: usize, seed: u64, iters: usize) -> Vec<PathsPoint> {
    use xqd_xquery::{eval_query_with_indexes, parse_query};

    let cfg = XmarkConfig::with_target_bytes(target_bytes, seed);
    let xml = people_document(&cfg);
    let doc_bytes = xml.len();
    let mut store = Store::new();
    xqd_xml::parse_document(&mut store, &xml, Some("xmk.xml")).expect("people doc");

    let mut points = Vec::new();
    for &(label, query) in PATHS_QUERIES {
        let module = parse_query(query).expect("paths query parses");
        let mut time_mode = |use_indexes: bool| {
            let warmup = eval_query_with_indexes(&mut store, &module, use_indexes)
                .expect("paths query evaluates");
            let mut best = u128::MAX;
            for _ in 0..iters.max(1) {
                let t = Instant::now();
                let out = eval_query_with_indexes(&mut store, &module, use_indexes)
                    .expect("paths query evaluates");
                best = best.min(t.elapsed().as_micros());
                assert_eq!(out, warmup, "{label}: unstable result across runs");
            }
            (warmup, best)
        };
        let (scan_result, scan_us) = time_mode(false);
        let (indexed_result, indexed_us) = time_mode(true);
        points.push(PathsPoint {
            query: label,
            doc_bytes,
            scan_us,
            indexed_us,
            results_identical: scan_result == indexed_result,
        });
    }
    points
}

/// The full `paths` sweep: every query at every scale.
pub fn paths_sweep(scales: &[usize], iters: usize) -> Vec<PathsPoint> {
    scales.iter().flat_map(|&s| paths_points_at(s, 42, iters)).collect()
}

/// The BENCH_paths json document for a sweep.
pub fn paths_json(points: &[PathsPoint]) -> String {
    let entries: Vec<String> = points.iter().map(|p| format!("    {}", p.to_json())).collect();
    format!(
        "{{\n  \"bench\": \"paths\",\n  \
         \"query_set\": \"descendant-heavy XMark path steps, indexed vs scan\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Plans: compiled front end + LRU plan cache (cache off / cold / warm)
// ---------------------------------------------------------------------------

/// The repeated-query workload of the `plans` bench: federated query shapes
/// over the Section VII two-peer federation, from a single-call semijoin to
/// scatter and constant-heavy bodies. Repeated traffic of exactly these
/// texts is the workload the plan cache amortizes.
pub const PLANS_QUERIES: &[(&str, &str)] = &[
    (
        "person-count",
        r#"count(doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person)"#,
    ),
    (
        "young-person-names",
        r#"for $p in doc("xrpc://peer1/xmk.xml")/descendant::person
           return if ($p/descendant::age < 40) then $p/child::name else ()"#,
    ),
    (
        "two-peer-scatter",
        r#"(count(doc("xrpc://peer1/xmk.xml")/descendant::person),
            count(doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction))"#,
    ),
    (
        "semijoin-authors",
        BENCHMARK_QUERY,
    ),
    (
        "const-heavy-filter",
        r#"for $p in doc("xrpc://peer1/xmk.xml")/descendant::person
           return if ($p/descendant::age < (2 * 10 + 20)) then $p/attribute::id else ()"#,
    ),
];

/// One `plans` measurement: the front-end rate (plans/sec) for one query
/// with the cache off / cold / warm, plus end-to-end per-query latency and
/// the bit-parity verdict of compiled vs. interpreted execution.
#[derive(Debug, Clone)]
pub struct PlansPoint {
    /// Workload label (see [`PLANS_QUERIES`]).
    pub query: &'static str,
    /// Front-end rate with the plan cache disabled (`plan_cache_size: 0`):
    /// every call pays parse + decompose + replica resolution + lowering.
    pub off_plans_per_sec: f64,
    /// Front-end rate with the cache cleared before every call: the miss
    /// path including insertion.
    pub cold_plans_per_sec: f64,
    /// Front-end rate on a primed cache: one hash lookup per call.
    pub warm_plans_per_sec: f64,
    /// End-to-end latency of one run with compilation on and a warm cache.
    pub compiled_us: u128,
    /// End-to-end latency of one run with the tree-walk interpreter.
    pub interpreted_us: u128,
    /// End-to-end latency of one run with span tracing enabled (same warm
    /// federation as `compiled_us`) — the tracing overhead budget.
    pub traced_us: u128,
    pub results_identical: bool,
    /// Message AND document bytes agree between compiled and interpreted
    /// execution — the wire is bit-identical.
    pub bytes_identical: bool,
}

impl PlansPoint {
    /// Warm-cache front-end speedup over the uncached front end.
    pub fn warm_speedup(&self) -> f64 {
        self.warm_plans_per_sec / self.off_plans_per_sec.max(f64::MIN_POSITIVE)
    }

    /// Tracing overhead as a fraction of the untraced run (0 when the
    /// traced run was not slower).
    pub fn trace_overhead_frac(&self) -> f64 {
        let base = self.compiled_us.max(1) as f64;
        (self.traced_us.saturating_sub(self.compiled_us)) as f64 / base
    }

    /// The CI overhead budget: the traced run stays within 3% of the
    /// untraced run, with a 150µs absolute floor absorbing host timer
    /// noise on the sub-millisecond smoke points.
    pub fn trace_overhead_ok(&self) -> bool {
        let budget = (self.compiled_us * 3 / 100).max(150);
        self.traced_us <= self.compiled_us + budget
    }

    /// One JSON object for the BENCH_plans trajectory (hand-rolled: the
    /// workspace is std-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\": \"{}\", \"off_plans_per_sec\": {:.1}, \
             \"cold_plans_per_sec\": {:.1}, \"warm_plans_per_sec\": {:.1}, \
             \"warm_speedup\": {:.3}, \"compiled_us\": {}, \"interpreted_us\": {}, \
             \"traced_us\": {}, \"trace_overhead_ok\": {}, \
             \"results_identical\": {}, \"bytes_identical\": {}}}",
            self.query,
            self.off_plans_per_sec,
            self.cold_plans_per_sec,
            self.warm_plans_per_sec,
            self.warm_speedup(),
            self.compiled_us,
            self.interpreted_us,
            self.traced_us,
            self.trace_overhead_ok(),
            self.results_identical,
            self.bytes_identical,
        )
    }
}

/// Times `iters` calls of `f` and returns the rate in calls/sec.
fn rate_of(iters: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Measures one [`PLANS_QUERIES`] entry at one document scale under
/// `strategy`. The three front-end modes run `iters` `prepare` calls each;
/// latency is the best of `iters.min(5)` full runs per mode.
pub fn plans_point(
    label: &'static str,
    query: &str,
    bytes_per_doc: usize,
    strategy: Strategy,
    iters: usize,
) -> PlansPoint {
    let iters = iters.max(1);

    // cache off: plan_cache_size 0 recompiles on every prepare
    let mut off = setup_federation(bytes_per_doc, 42);
    off.set_exec_options(ExecOptions { plan_cache_size: 0, ..ExecOptions::default() });
    let off_plans_per_sec = rate_of(iters, || {
        off.prepare(query, strategy).expect("prepare");
    });

    // cold: the miss path of an enabled cache (cleared before every call)
    let mut cold = setup_federation(bytes_per_doc, 42);
    let cold_plans_per_sec = rate_of(iters, || {
        cold.clear_plan_cache();
        cold.prepare(query, strategy).expect("prepare");
    });

    // warm: primed once, then every call is a hash lookup
    let mut warm = setup_federation(bytes_per_doc, 42);
    warm.prepare(query, strategy).expect("prime");
    let warm_plans_per_sec = rate_of(iters, || {
        warm.prepare(query, strategy).expect("prepare");
    });

    // bit-parity + latency: compiled (warm fed) vs the interpreter oracle
    let mut interp = setup_federation(bytes_per_doc, 42);
    interp.set_exec_options(ExecOptions { compile: false, ..ExecOptions::default() });
    let lat_iters = iters.clamp(1, 5);
    let mut compiled_us = u128::MAX;
    let mut interpreted_us = u128::MAX;
    let mut compiled_out = None;
    let mut interp_out = None;
    for _ in 0..lat_iters {
        let t = Instant::now();
        let out = warm.run(query, strategy).expect("compiled run");
        compiled_us = compiled_us.min(t.elapsed().as_micros());
        compiled_out = Some(out);
        let t = Instant::now();
        let out = interp.run(query, strategy).expect("interpreted run");
        interpreted_us = interpreted_us.min(t.elapsed().as_micros());
        interp_out = Some(out);
    }
    let compiled_out = compiled_out.expect("at least one run");
    let interp_out = interp_out.expect("at least one run");

    // tracing overhead: the same warm federation with span tracing on
    let saved = warm.exec_options();
    warm.set_exec_options(ExecOptions { trace: true, ..saved });
    let mut traced_us = u128::MAX;
    for _ in 0..lat_iters.max(3) {
        let t = Instant::now();
        warm.run(query, strategy).expect("traced run");
        traced_us = traced_us.min(t.elapsed().as_micros());
    }
    warm.set_exec_options(saved);

    PlansPoint {
        query: label,
        off_plans_per_sec,
        cold_plans_per_sec,
        warm_plans_per_sec,
        compiled_us,
        interpreted_us,
        traced_us,
        results_identical: compiled_out.result == interp_out.result,
        bytes_identical: compiled_out.metrics.message_bytes == interp_out.metrics.message_bytes
            && compiled_out.metrics.document_bytes == interp_out.metrics.document_bytes,
    }
}

/// The full `plans` sweep: every workload query under `strategy`.
pub fn plans_sweep(bytes_per_doc: usize, strategy: Strategy, iters: usize) -> Vec<PlansPoint> {
    PLANS_QUERIES
        .iter()
        .map(|&(label, query)| plans_point(label, query, bytes_per_doc, strategy, iters))
        .collect()
}

/// The BENCH_plans json document for a sweep.
pub fn plans_json(points: &[PlansPoint], strategy: Strategy) -> String {
    let entries: Vec<String> = points.iter().map(|p| format!("    {}", p.to_json())).collect();
    format!(
        "{{\n  \"bench\": \"plans\",\n  \"strategy\": \"{}\",\n  \
         \"workload\": \"repeated federated queries, plan cache off / cold / warm\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        strategy.name(),
        entries.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Joins: semi-join key shipping vs the existing strategy ladder
// ---------------------------------------------------------------------------

/// The `joins` bench query — Q2's join shape on the XMark pair, keyed in
/// the direction where the key column carries duplicates (Q2's "many exams
/// per student"): cheap auctions on peer2 are joined by `seller/@person`
/// against the people document on peer1, returning the sellers' names.
/// One seller runs many auctions, so the producer's key column collapses
/// hard under `distinct-keys` — the classic semi-join win the ladder's
/// strategies cannot see.
pub const JOIN_QUERY: &str = r#"
(let $t := (let $a := doc("xrpc://peer2/xmk.auctions.xml")/child::site/child::open_auctions/child::open_auction
            return for $x in $a return
                if ($x/child::quantity < 3) then $x else ())
 return for $p in (let $s := doc("xrpc://peer1/xmk.xml")
                   return $s/descendant::person)
        return if ($p/attribute::id = $t/child::seller/attribute::person)
               then $p/child::name else ())
"#;

/// The asymmetric federation of the `joins` bench: the auction side scales
/// with `auction_bytes` while the seller pool stays fixed, so the number of
/// auctions *per seller* — the key-duplication factor — grows with scale.
pub fn joins_federation(auction_bytes: usize, seed: u64) -> Federation {
    let cfg = XmarkConfig {
        people: 40,
        open_auctions: (auction_bytes / 650).max(1),
        seed,
        payload_words: 30,
    };
    let (people, auctions) = document_pair(&cfg);
    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document("peer1", "xmk.xml", &people).expect("people doc");
    fed.load_document("peer2", "xmk.auctions.xml", &auctions).expect("auctions doc");
    fed
}

/// One `joins` measurement at one scale: the Section VII join executed by
/// the best of the paper's four strategies (semi-join off — the existing
/// ladder) against the same strategy set with join-aware decomposition on.
#[derive(Debug, Clone)]
pub struct JoinsPoint {
    pub bytes_per_doc: usize,
    pub total_doc_bytes: u64,
    /// Cheapest existing-ladder strategy by total transferred bytes.
    pub baseline_strategy: &'static str,
    pub baseline_bytes: u64,
    pub baseline_wall_us: u128,
    /// Cheapest strategy with the semi-join rewrite on.
    pub semijoin_strategy: &'static str,
    pub semijoin_bytes: u64,
    pub semijoin_wall_us: u128,
    /// Executor counters from the semi-join run.
    pub semijoins: u64,
    pub join_keys_shipped: u64,
    pub join_bytes_saved: u64,
    /// Semi-join results == existing-ladder results, bit for bit.
    pub results_identical: bool,
    /// With the semi-join off, compiled execution is byte-identical to the
    /// interpreter oracle on the baseline strategy — flipping the toggle
    /// reproduces the old wire exactly.
    pub bytes_identical: bool,
}

impl JoinsPoint {
    /// Transferred-byte reduction of the semi-join over the best existing
    /// strategy (>1 means the key filter wins).
    pub fn reduction(&self) -> f64 {
        self.baseline_bytes as f64 / self.semijoin_bytes.max(1) as f64
    }

    /// One JSON object for the BENCH_joins trajectory (hand-rolled: the
    /// workspace is std-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"doc_bytes\": {}, \"total_doc_bytes\": {}, \
             \"baseline_strategy\": \"{}\", \"baseline_bytes\": {}, \
             \"baseline_wall_us\": {}, \
             \"semijoin_strategy\": \"{}\", \"semijoin_bytes\": {}, \
             \"semijoin_wall_us\": {}, \"byte_reduction\": {:.3}, \
             \"semijoins\": {}, \"join_keys_shipped\": {}, \
             \"join_bytes_saved\": {}, \
             \"results_identical\": {}, \"bytes_identical\": {}}}",
            self.bytes_per_doc,
            self.total_doc_bytes,
            self.baseline_strategy,
            self.baseline_bytes,
            self.baseline_wall_us,
            self.semijoin_strategy,
            self.semijoin_bytes,
            self.semijoin_wall_us,
            self.reduction(),
            self.semijoins,
            self.join_keys_shipped,
            self.join_bytes_saved,
            self.results_identical,
            self.bytes_identical,
        )
    }
}

/// Measures the benchmark join at one scale. Every strategy runs twice —
/// semi-join off (the existing ladder) and on — and each side reports its
/// cheapest strategy by transferred bytes; data shipping only competes on
/// the off side (the rewrite never fires without decomposition).
pub fn joins_point(bytes_per_doc: usize, seed: u64) -> JoinsPoint {
    let run = |strategy: Strategy, semijoin: bool, compile: bool| {
        let mut fed = joins_federation(bytes_per_doc, seed);
        fed.set_exec_options(ExecOptions { semijoin, compile, ..ExecOptions::default() });
        let t = Instant::now();
        let out = fed.run(JOIN_QUERY, strategy).expect("join query");
        (out, t.elapsed().as_micros())
    };

    let total_doc_bytes = joins_federation(bytes_per_doc, seed).total_document_bytes();

    let mut baseline: Option<(Strategy, _, u128)> = None;
    for strategy in Strategy::ALL {
        let (out, us) = run(strategy, false, true);
        if baseline
            .as_ref()
            .map(|(_, b, _): &(_, xqd_xrpc::RunOutcome, _)| {
                out.metrics.transferred_bytes() < b.metrics.transferred_bytes()
            })
            .unwrap_or(true)
        {
            baseline = Some((strategy, out, us));
        }
    }
    let (base_strategy, base_out, base_us) = baseline.expect("one baseline");

    let mut semi: Option<(Strategy, _, u128)> = None;
    for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
        let (out, us) = run(strategy, true, true);
        if semi
            .as_ref()
            .map(|(_, b, _): &(_, xqd_xrpc::RunOutcome, _)| {
                out.metrics.transferred_bytes() < b.metrics.transferred_bytes()
            })
            .unwrap_or(true)
        {
            semi = Some((strategy, out, us));
        }
    }
    let (semi_strategy, semi_out, semi_us) = semi.expect("one semijoin run");

    // oracle check: semi-join off must replay the old wire bit for bit
    let (interp_out, _) = run(base_strategy, false, false);

    JoinsPoint {
        bytes_per_doc,
        total_doc_bytes,
        baseline_strategy: base_strategy.name(),
        baseline_bytes: base_out.metrics.transferred_bytes(),
        baseline_wall_us: base_us,
        semijoin_strategy: semi_strategy.name(),
        semijoin_bytes: semi_out.metrics.transferred_bytes(),
        semijoin_wall_us: semi_us,
        semijoins: semi_out.metrics.semijoins,
        join_keys_shipped: semi_out.metrics.join_keys_shipped,
        join_bytes_saved: semi_out.metrics.join_bytes_saved,
        results_identical: semi_out.result == base_out.result
            && interp_out.result == base_out.result,
        bytes_identical: interp_out.metrics.message_bytes == base_out.metrics.message_bytes
            && interp_out.metrics.document_bytes == base_out.metrics.document_bytes,
    }
}

/// The full `joins` sweep across document scales.
pub fn joins_sweep(scales: &[usize]) -> Vec<JoinsPoint> {
    scales.iter().map(|&s| joins_point(s, 42)).collect()
}

/// The BENCH_joins json document for a sweep.
pub fn joins_json(points: &[JoinsPoint]) -> String {
    let entries: Vec<String> = points.iter().map(|p| format!("    {}", p.to_json())).collect();
    format!(
        "{{\n  \"bench\": \"joins\",\n  \
         \"query\": \"XMark person/auction equi-join, semi-join key shipping vs the strategy ladder\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Throughput: multi-tenant goodput and tail latency vs offered load
// ---------------------------------------------------------------------------

/// The multi-tenant mix of the `throughput` bench: an interactive tenant
/// (high fair-queuing weight, cheap lookups), a reporting tenant and a scan
/// tenant splitting the offered load 40/40/20 over the Section VII
/// federation.
pub fn throughput_tenants(offered_qps: f64) -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(
            "interactive",
            4,
            offered_qps * 0.4,
            vec![
                "count(doc(\"xrpc://peer1/xmk.xml\")/child::site/child::people/child::person)"
                    .to_string(),
            ],
        ),
        TenantSpec::new(
            "reporting",
            1,
            offered_qps * 0.4,
            vec![
                "count(doc(\"xrpc://peer2/xmk.auctions.xml\")/descendant::open_auction)"
                    .to_string(),
            ],
        ),
        TenantSpec::new(
            "scan",
            1,
            offered_qps * 0.2,
            vec!["doc(\"xrpc://peer1/xmk.xml\")/descendant::person/attribute::id".to_string()],
        ),
    ]
}

/// Capacity of the throughput federation in queries per second: workers
/// over the mean fault-free service time of the workload templates. Each
/// sweep point's offered load is a multiple of this.
pub fn throughput_capacity(bytes_per_doc: usize) -> f64 {
    let mut fed = setup_federation(bytes_per_doc, 42);
    let config = WorkloadConfig::new(throughput_tenants(1.0));
    WorkloadEngine::capacity_qps(&mut fed, &config).expect("capacity probe")
}

/// One offered-load point of the throughput sweep.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Offered load as a multiple of estimated capacity.
    pub load_factor: f64,
    pub offered_qps: f64,
    pub goodput_qps: f64,
    pub arrivals: u64,
    pub completed: u64,
    pub shed: u64,
    pub deadline_cancelled: u64,
    pub errored: u64,
    pub p50_us: u128,
    pub p95_us: u128,
    pub p99_us: u128,
    pub peak_queue_depth: u64,
    /// Every completed query matched the fault-free serial baseline.
    pub results_identical: bool,
    /// Every non-completed query carries a typed error code.
    pub all_errors_typed: bool,
}

impl ThroughputPoint {
    /// One JSON object for the BENCH_throughput trajectory (hand-rolled:
    /// the workspace is std-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"load_factor\": {:.2}, \"offered_qps\": {:.1}, \"goodput_qps\": {:.1}, \
             \"arrivals\": {}, \"completed\": {}, \"shed\": {}, \
             \"deadline_cancelled\": {}, \"errored\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"peak_queue_depth\": {}, \
             \"results_identical\": {}, \"all_errors_typed\": {}}}",
            self.load_factor,
            self.offered_qps,
            self.goodput_qps,
            self.arrivals,
            self.completed,
            self.shed,
            self.deadline_cancelled,
            self.errored,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.peak_queue_depth,
            self.results_identical,
            self.all_errors_typed,
        )
    }
}

/// Runs the multi-tenant workload at `load × capacity`, sizing the arrival
/// window so roughly `target_arrivals` queries arrive regardless of load.
pub fn throughput_point(
    bytes_per_doc: usize,
    capacity_qps: f64,
    load: f64,
    target_arrivals: usize,
) -> ThroughputPoint {
    let offered = capacity_qps * load;
    let mut fed = setup_federation(bytes_per_doc, 42);
    let mut config = WorkloadConfig::new(throughput_tenants(offered));
    config.duration = Duration::from_secs_f64((target_arrivals as f64 / offered).max(1e-3));
    let report = WorkloadEngine::run(&mut fed, &config).expect("workload run");
    ThroughputPoint {
        load_factor: load,
        offered_qps: report.offered_qps,
        goodput_qps: report.goodput_qps,
        arrivals: report.arrivals,
        completed: report.completed,
        shed: report.shed,
        deadline_cancelled: report.deadline_cancelled,
        errored: report.errored,
        p50_us: report.p50.as_micros(),
        p95_us: report.p95.as_micros(),
        p99_us: report.p99.as_micros(),
        peak_queue_depth: report.metrics.peak_queue_depth,
        results_identical: report.results_identical,
        all_errors_typed: report.all_errors_typed,
    }
}

/// The full `throughput` sweep over offered-load multiples of capacity.
pub fn throughput_sweep(
    bytes_per_doc: usize,
    loads: &[f64],
    target_arrivals: usize,
) -> Vec<ThroughputPoint> {
    let capacity = throughput_capacity(bytes_per_doc);
    loads
        .iter()
        .map(|&l| throughput_point(bytes_per_doc, capacity, l, target_arrivals))
        .collect()
}

/// The BENCH_throughput json document for a sweep. The summary reports the
/// flat-top check: goodput at the highest offered load (≥ 2x capacity in
/// the default sweep) must stay within 10% of the peak — shed, don't
/// thrash.
pub fn throughput_json(points: &[ThroughputPoint]) -> String {
    let peak = points.iter().map(|p| p.goodput_qps).fold(0.0_f64, f64::max);
    let at_max_load = points
        .iter()
        .max_by(|a, b| a.load_factor.total_cmp(&b.load_factor))
        .map(|p| p.goodput_qps)
        .unwrap_or(0.0);
    let flat_top = at_max_load >= peak * 0.9;
    let total_shed: u64 = points.iter().map(|p| p.shed).sum();
    let entries: Vec<String> = points.iter().map(|p| format!("    {}", p.to_json())).collect();
    format!(
        "{{\n  \"bench\": \"throughput\",\n  \
         \"workload\": \"3 tenants (weights 4/1/1), seeded Poisson arrivals, WFQ + admission control\",\n  \
         \"peak_goodput_qps\": {:.1},\n  \
         \"goodput_at_max_load_qps\": {:.1},\n  \
         \"flat_top\": {},\n  \
         \"total_shed\": {},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        peak,
        at_max_load,
        flat_top,
        total_shed,
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_query_agrees_across_strategies() {
        let mut baseline = None;
        for strategy in Strategy::ALL {
            let mut fed = setup_federation(30_000, 7);
            let out = fed.run(BENCHMARK_QUERY, strategy).unwrap();
            assert!(!out.result.is_empty(), "{strategy:?} produced no authors");
            match &baseline {
                None => baseline = Some(out.result),
                Some(b) => assert_eq!(&out.result, b, "{strategy:?}"),
            }
        }
    }

    #[test]
    fn fig7_ordering_holds() {
        // data-shipping > by-value > by-fragment ≥ by-projection in bytes
        let points = fig8_breakdown(40_000);
        let bytes: Vec<u64> = points.iter().map(|p| p.metrics.transferred_bytes()).collect();
        assert!(bytes[0] > bytes[1], "data-shipping {} > by-value {}", bytes[0], bytes[1]);
        assert!(bytes[1] > bytes[2], "by-value {} > by-fragment {}", bytes[1], bytes[2]);
        assert!(bytes[2] > bytes[3], "by-fragment {} > by-projection {}", bytes[2], bytes[3]);
    }

    #[test]
    fn scaleout_speedup_exceeds_2x_at_4_peers() {
        let p = scaleout_point(4, 8_000);
        assert_eq!(p.parallel_result, p.sequential_result, "results must be identical");
        assert_eq!(
            p.parallel.message_bytes, p.sequential.message_bytes,
            "total message bytes must be identical"
        );
        assert_eq!(p.parallel.transfers, p.sequential.transfers);
        assert_eq!(p.parallel.remote_calls, p.sequential.remote_calls);
        assert_eq!(p.parallel.scatter_rounds, 1);
        assert!(
            p.speedup() > 2.0,
            "scatter-gather at 4 peers should be >2x: {:.2}x (seq {:?}, par {:?})",
            p.speedup(),
            p.sequential.wall_clock_serialized(),
            p.parallel.wall_clock_overlapped()
        );
    }

    #[test]
    fn scaleout_json_is_well_formed() {
        let points = scaleout(2, 4_000);
        let json = scaleout_json(&points);
        assert!(json.contains("\"bench\": \"scaleout\""));
        assert!(json.contains("\"peers\": 1"));
        assert!(json.contains("\"peers\": 2"));
        assert!(json.contains("\"results_identical\": true"));
        assert!(json.contains("\"bytes_identical\": true"));
    }

    #[test]
    fn paths_results_identical_and_json_well_formed() {
        let points = paths_points_at(20_000, 9, 2);
        assert_eq!(points.len(), PATHS_QUERIES.len());
        for p in &points {
            assert!(p.results_identical, "{}: indexed and scan results differ", p.query);
        }
        let json = paths_json(&points);
        assert!(json.contains("\"bench\": \"paths\""));
        assert!(json.contains("\"results_identical\": true"));
        assert!(!json.contains("\"results_identical\": false"));
    }

    #[test]
    fn plans_warm_cache_amortizes_front_end() {
        let (label, query) = PLANS_QUERIES[0];
        let p = plans_point(label, query, 6_000, Strategy::ByValue, 40);
        assert!(p.results_identical, "compiled and interpreted results differ");
        assert!(p.bytes_identical, "compiled and interpreted wire bytes differ");
        assert!(
            p.warm_speedup() > 3.0,
            "warm cache should beat the uncached front end: {:.1}x (off {:.0}/s, warm {:.0}/s)",
            p.warm_speedup(),
            p.off_plans_per_sec,
            p.warm_plans_per_sec
        );
    }

    #[test]
    fn plans_json_is_well_formed() {
        let points: Vec<PlansPoint> = PLANS_QUERIES[..2]
            .iter()
            .map(|&(label, query)| plans_point(label, query, 4_000, Strategy::ByValue, 3))
            .collect();
        let json = plans_json(&points, Strategy::ByValue);
        assert!(json.contains("\"bench\": \"plans\""));
        assert!(json.contains("\"results_identical\": true"));
        assert!(json.contains("\"bytes_identical\": true"));
        assert!(!json.contains("false"));
    }

    #[test]
    fn joins_semijoin_beats_the_ladder_and_stays_identical() {
        let p = joins_point(60_000, 42);
        assert!(p.results_identical, "semi-join changed the join result");
        assert!(p.bytes_identical, "semi-join off no longer replays the old wire");
        assert_eq!(p.semijoins, 1, "the join edge must be detected");
        assert!(p.join_keys_shipped > 0, "no keys were shipped");
        assert!(
            p.reduction() > 1.5,
            "semi-join should already win at 60k: {:.2}x ({} vs {})",
            p.reduction(),
            p.baseline_bytes,
            p.semijoin_bytes
        );
    }

    #[test]
    fn joins_json_is_well_formed() {
        let points = joins_sweep(&[8_000, 30_000]);
        let json = joins_json(&points);
        assert!(json.contains("\"bench\": \"joins\""));
        assert!(json.contains("\"results_identical\": true"));
        assert!(json.contains("\"bytes_identical\": true"));
        assert!(!json.contains("identical\": false"));
    }

    #[test]
    fn throughput_sheds_past_saturation_with_flat_goodput() {
        let points = throughput_sweep(4_000, &[1.0, 2.0], 150);
        let json = throughput_json(&points);
        assert!(json.contains("\"bench\": \"throughput\""));
        assert!(json.contains("\"flat_top\": true"), "goodput collapsed past saturation:\n{json}");
        assert!(!json.contains("\"results_identical\": false"), "{json}");
        assert!(!json.contains("\"all_errors_typed\": false"), "{json}");
        let at_2x = points.iter().find(|p| p.load_factor == 2.0).unwrap();
        assert!(at_2x.shed > 0, "2x load must trip admission control: {at_2x:?}");
        assert_eq!(
            at_2x.completed + at_2x.shed + at_2x.deadline_cancelled + at_2x.errored,
            at_2x.arrivals,
            "every arrival must be accounted for"
        );
    }

    #[test]
    fn fig10_runtime_more_precise() {
        let p = fig10_11_projection(60_000, 3);
        assert!(
            p.runtime_bytes * 2 < p.compile_time_bytes,
            "runtime {} should be well under compile-time {}",
            p.runtime_bytes,
            p.compile_time_bytes
        );
        assert!(p.compile_time_bytes < p.doc_bytes);
    }
}
