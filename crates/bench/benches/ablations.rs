//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `fragment_dedup` — overlapping parameters under by-value (each copy
//!   serialized separately, Fig. 4 top) vs by-fragment (one deduplicated
//!   fragments preamble, Fig. 4 bottom): message size and end-to-end time.
//! * `bulk_rpc` — a remote call nested in a for-loop with a literal peer
//!   (batched into one message) vs a computed peer (defeats the batcher →
//!   one round trip per iteration).
//! * `code_motion` — Q2-style semijoin with distributed code motion
//!   (automatic) vs a hand-written plan shipping full person nodes.
//! * `runtime_vs_compiletime` — projection precision across predicate
//!   selectivities (the age threshold knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xqd_bench::fig10_11_projection_with_threshold;
use xqd_core::Strategy;
use xqd_xmark::{people_document, XmarkConfig};
use xqd_xrpc::{Federation, NetworkModel};

/// Query with heavily overlapping node parameters: the whole site tree and
/// every person are shipped to the same call.
const OVERLAP_QUERY: &str = r#"
    declare function f($whole as node(), $parts as node()) as xs:integer
    { count($whole//person) + count($parts) };
    let $site := doc("xrpc://local/xmk.xml")/site,
        $people := $site/people/person
    return execute at {"p"} { f($site, $people) }
"#;

fn overlap_federation(bytes: usize) -> Federation {
    let cfg = XmarkConfig::with_target_bytes(bytes, 11);
    let mut fed = Federation::new(NetworkModel::lan());
    fed.add_peer("p");
    fed.load_document("local", "xmk.xml", &people_document(&cfg)).unwrap();
    fed
}

fn bench_fragment_dedup(c: &mut Criterion) {
    let bytes = 150_000;
    // report message sizes once
    for strategy in [Strategy::ByValue, Strategy::ByFragment] {
        let mut fed = overlap_federation(bytes);
        let out = fed.run(OVERLAP_QUERY, strategy).unwrap();
        println!(
            "fragment_dedup [{}]: {} message bytes",
            strategy.name(),
            out.metrics.message_bytes
        );
    }
    let mut group = c.benchmark_group("fragment_dedup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for strategy in [Strategy::ByValue, Strategy::ByFragment] {
        group.bench_function(strategy.name(), |b| {
            b.iter_batched(
                || overlap_federation(bytes),
                |mut fed| fed.run(OVERLAP_QUERY, strategy).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The intro example shape: one remote predicate evaluation per employee.
/// With a literal peer the evaluator batches all iterations into one Bulk
/// RPC message; the computed-peer variant is semantically identical but
/// defeats the batcher.
fn bulk_queries() -> (&'static str, &'static str) {
    // the call sits directly in the for's return clause → batchable
    let bulk = r#"
        declare function pick($d as xs:string, $n as xs:string) as xs:string
        { if ($d = doc("depts.xml")//dept/@name) then $n else "-" };
        for $e in doc("xrpc://local/employees.xml")//emp
        return execute at {"org"} { pick($e/@dept, $e/@name) }
    "#;
    // a computed peer expression defeats the batcher: one message per call
    let unbatched = r#"
        declare function pick($d as xs:string, $n as xs:string) as xs:string
        { if ($d = doc("depts.xml")//dept/@name) then $n else "-" };
        for $e in doc("xrpc://local/employees.xml")//emp
        return execute at { concat("or", "g") } { pick($e/@dept, $e/@name) }
    "#;
    (bulk, unbatched)
}

fn bulk_federation(n_emps: usize) -> Federation {
    let mut emps = String::from("<emps>");
    for i in 0..n_emps {
        emps.push_str(&format!(
            "<emp name=\"e{i}\" dept=\"{}\"/>",
            if i % 3 == 0 { "sales" } else { "hr" }
        ));
    }
    emps.push_str("</emps>");
    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document("local", "employees.xml", &emps).unwrap();
    fed.load_document("org", "depts.xml", "<depts><dept name=\"sales\"/></depts>").unwrap();
    fed
}

fn bench_bulk_rpc(c: &mut Criterion) {
    let n = 200;
    let (bulk, unbatched) = bulk_queries();
    let mut transfer_counts = Vec::new();
    for (label, q) in [("bulk", bulk), ("per-call", unbatched)] {
        let mut fed = bulk_federation(n);
        let out = fed.run(q, Strategy::ByFragment).unwrap();
        println!(
            "bulk_rpc [{label}]: {} transfers, {} remote calls, {} message bytes",
            out.metrics.transfers, out.metrics.remote_calls, out.metrics.message_bytes
        );
        assert_eq!(out.result.len(), n, "one string per employee");
        transfer_counts.push(out.metrics.transfers);
    }
    assert!(
        transfer_counts[0] < transfer_counts[1] / 10,
        "bulk must collapse round trips: {transfer_counts:?}"
    );
    let mut group = c.benchmark_group("bulk_rpc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, q) in [("bulk", bulk), ("per-call", unbatched)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || bulk_federation(n),
                |mut fed| fed.run(q, Strategy::ByFragment).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The Section VII query under by-fragment, with distributed code motion
/// on (ships extracted `@id` values) vs off (ships the full filtered
/// person nodes as the peer2 parameter) — the Example 4.3 effect.
fn bench_code_motion(c: &mut Criterion) {
    use xqd_core::DecomposeOptions;
    let bytes = 150_000;
    let variants = [
        ("with-motion", DecomposeOptions::default()),
        ("without-motion", DecomposeOptions { code_motion: false, ..Default::default() }),
    ];
    let mut reference = None;
    let mut bytes_seen = Vec::new();
    for (label, opts) in variants {
        let mut fed = xqd_bench::setup_federation(bytes, 42);
        let out = fed
            .run_with(xqd_bench::BENCHMARK_QUERY, Strategy::ByFragment, opts)
            .unwrap();
        println!(
            "code_motion [{label}]: {} message bytes, {} results",
            out.metrics.message_bytes,
            out.result.len()
        );
        bytes_seen.push(out.metrics.message_bytes);
        match &reference {
            None => reference = Some(out.result),
            Some(r) => assert_eq!(&out.result, r, "plans must agree"),
        }
    }
    assert!(
        bytes_seen[0] < bytes_seen[1],
        "code motion must shrink messages: {bytes_seen:?}"
    );
    let mut group = c.benchmark_group("code_motion");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, opts) in variants {
        group.bench_function(label, |b| {
            b.iter_batched(
                || xqd_bench::setup_federation(bytes, 42),
                |mut fed| {
                    fed.run_with(xqd_bench::BENCHMARK_QUERY, Strategy::ByFragment, opts).unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_selectivity(c: &mut Criterion) {
    let bytes = 250_000;
    let mut group = c.benchmark_group("runtime_vs_compiletime");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threshold in [25u32, 40, 60, 100] {
        let p = fig10_11_projection_with_threshold(bytes, 42, threshold);
        println!(
            "selectivity [age<{threshold}]: compile-time {} B, runtime {} B ({:.2}x)",
            p.compile_time_bytes,
            p.runtime_bytes,
            p.compile_time_bytes as f64 / p.runtime_bytes.max(1) as f64
        );
        group.bench_with_input(
            BenchmarkId::new("runtime", threshold),
            &threshold,
            |b, &t| b.iter(|| fig10_11_projection_with_threshold(bytes, 42, t)),
        );
    }
    group.finish();
}

/// Let-motion on vs off under by-fragment: without the Qc2→Qn2
/// normalization, the B-side class root sits above the whole tutor filter
/// and all filtered persons ship as parameters.
fn bench_let_motion(c: &mut Criterion) {
    use xqd_core::DecomposeOptions;
    let bytes = 150_000;
    // the Qc2-style phrasing of the benchmark query: all lets at the top,
    // related to their uses only through varref edges — exactly the
    // syntactic variation let-motion exists to neutralize (the published
    // BENCHMARK_QUERY is already in Qn2 form, where let-motion is a no-op)
    const QC2_STYLE: &str = r#"
        (let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
         return let $c := doc("xrpc://peer2/xmk.auctions.xml")
         return let $t := (for $x in $s return
                    if ($x/descendant::age < 40) then $x else ())
         return for $e in $c/descendant::open_auction
                return if ($e/child::seller/attribute::person = $t/attribute::id)
                       then $e/child::annotation else ())/child::author
    "#;
    let variants = [
        ("with-let-motion", DecomposeOptions::default()),
        ("without-let-motion", DecomposeOptions { let_motion: false, ..Default::default() }),
    ];
    let mut reference = None;
    let mut bytes_seen = Vec::new();
    for (label, opts) in variants {
        let mut fed = xqd_bench::setup_federation(bytes, 42);
        let out = fed
            .run_with(QC2_STYLE, Strategy::ByFragment, opts)
            .unwrap();
        println!(
            "let_motion [{label}]: {} message bytes, {} results",
            out.metrics.message_bytes,
            out.result.len()
        );
        bytes_seen.push(out.metrics.message_bytes);
        match &reference {
            None => reference = Some(out.result),
            Some(r) => assert_eq!(&out.result, r, "plans must agree"),
        }
    }
    assert!(
        bytes_seen[0] < bytes_seen[1],
        "let-motion must enable the cheaper plan: {bytes_seen:?}"
    );
    let mut group = c.benchmark_group("let_motion");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, opts) in variants {
        group.bench_function(label, |b| {
            b.iter_batched(
                || xqd_bench::setup_federation(bytes, 42),
                |mut fed| fed.run_with(QC2_STYLE, Strategy::ByFragment, opts).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_fragment_dedup,
    bench_bulk_rpc,
    bench_code_motion,
    bench_let_motion,
    bench_selectivity
);
criterion_main!(ablations);
