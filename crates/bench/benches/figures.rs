//! Criterion benches regenerating the measured series of **every figure**
//! in the paper's evaluation (Section VII).
//!
//! * `fig7_fig9/<strategy>/<size>` — end-to-end execution of the benchmark
//!   query per strategy and document size. Throughput is configured to the
//!   *transferred bytes*, so Criterion's report carries both the Figure 9
//!   timing series and the Figure 7 bandwidth series.
//! * `fig8_breakdown` — the same run at the largest size; the category
//!   split (shred / local exec / (de)serialize / remote exec / network) is
//!   printed once per strategy.
//! * `fig10_fig11_projection/<kind>/<size>` — compile-time vs runtime
//!   projection cost (Figure 11); projected sizes (Figure 10) are printed.
//!
//! Sizes are scaled down from the paper's 10–160 MB per document so a bench
//! run stays in CI-friendly territory; see EXPERIMENTS.md for the mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use xqd_bench::{
    fig10_11_projection, run_point, setup_federation, BENCHMARK_QUERY,
};
use xqd_core::Strategy;

// CI-friendly sizes; the experiments example sweeps 0.25-16 MB per doc
const SIZES: &[usize] = &[100_000, 200_000, 400_000];

fn bench_fig7_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig9");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &size in SIZES {
        for strategy in Strategy::ALL {
            // measure bandwidth once, outside the timing loop
            let point = run_point(size, strategy);
            group.throughput(Throughput::Bytes(point.metrics.transferred_bytes()));
            println!(
                "fig7 [{} @ {} B docs]: transferred {} B in {} transfers",
                strategy.name(),
                2 * size,
                point.metrics.transferred_bytes(),
                point.metrics.transfers
            );
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), 2 * size),
                &size,
                |b, &s| {
                    b.iter_batched(
                        || setup_federation(s, 42),
                        |mut fed| fed.run(BENCHMARK_QUERY, strategy).unwrap(),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let size = *SIZES.last().unwrap();
    for strategy in Strategy::ALL {
        let p = run_point(size, strategy);
        println!(
            "fig8 [{}]: shred {:?} | local {:?} | (de)serialize {:?} | remote {:?} | network {:?}",
            strategy.name(),
            p.metrics.shred,
            p.metrics.local_exec(),
            p.metrics.serialize,
            p.metrics.remote_exec,
            p.metrics.network,
        );
    }
    let mut group = c.benchmark_group("fig8_breakdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for strategy in Strategy::ALL {
        group.bench_function(strategy.name(), |b| {
            b.iter_batched(
                || setup_federation(size, 42),
                |mut fed| fed.run(BENCHMARK_QUERY, strategy).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_fig10_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_fig11_projection");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &size in SIZES {
        let p = fig10_11_projection(size, 42);
        println!(
            "fig10 [{} B doc]: compile-time {} B vs runtime {} B ({:.1}x more precise)",
            p.doc_bytes,
            p.compile_time_bytes,
            p.runtime_bytes,
            p.compile_time_bytes as f64 / p.runtime_bytes.max(1) as f64
        );
        group.bench_with_input(BenchmarkId::new("both", size), &size, |b, &s| {
            b.iter(|| fig10_11_projection(s, 42))
        });
    }
    group.finish();
}

criterion_group!(figures, bench_fig7_fig9, bench_fig8, bench_fig10_fig11);
criterion_main!(figures);
