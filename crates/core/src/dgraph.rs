//! The **dependency graph** (d-graph) of Section III-A.
//!
//! A d-graph is the parse tree of an XCore expression plus *varref edges*
//! from every variable use to the `Var` vertex that binds it. Following the
//! paper, consecutive path steps become a chain of `AxisStep` vertices with
//! the innermost expression at the bottom (Fig. 2: `v4:/person → v5:/people
//! → v6:FunCall[doc]`), and `For`/`Let` vertices own a `Var` vertex whose
//! single child is the binding's value expression.
//!
//! The graph is bidirectionally convertible with [`Expr`]: analysis and
//! XRPCExpr insertion (Section III-B) are performed on the graph, then the
//! rewritten query is extracted back for execution.

use std::collections::HashMap;

use xqd_xml::Axis;
use xqd_xquery::ast::{
    CaseClause, Constructor, ElemName, ExecProjection, Expr, NameTest, OrderSpec, SeqType, Step,
    XrpcParam,
};
use xqd_xquery::{Atomic, EvalError};

/// Vertex identifier within one [`DGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// Grammar rule represented by a vertex (Table II + rules 27–28, plus the
/// surface extensions that the analysis treats like their closest rule).
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    Literal(Atomic),
    Empty,
    /// Sequence construction (rule 2) — children are the members.
    ExprSeq,
    /// Binding occurrence of a variable; child 0 is the value expression.
    Var(String),
    VarRef(String),
    ContextItem,
    /// children: [Var, return]
    ForExpr,
    /// children: [Var, return]
    LetExpr,
    /// children: [cond, then, else]
    IfExpr,
    /// children: [input, case bodies…, default body]
    Typeswitch { cases: Vec<(String, SeqType)>, default_var: String },
    CompExpr(xqd_xquery::ast::CompOp),
    NodeCmp(xqd_xquery::ast::NodeCompOp),
    /// children: [input, keys…]
    OrderExpr(Vec<bool>),
    NodeSetExpr(xqd_xquery::ast::NodeSetOp),
    /// children: `[content]` or `[computed-name, content]`
    Constructor { kind: ConstructorKind, static_name: Option<String> },
    /// One path step; children: [input, predicates…].
    AxisStep { axis: Axis, test: NameTest },
    /// Leading `/` — the context document root.
    Root,
    /// Positional filter kept from the surface syntax;
    /// children: [input, predicate].
    Filter,
    FunCall(String),
    Arith(xqd_xquery::ast::ArithOp),
    And,
    Or,
    /// children: [peer, body, XRPCParam…]
    XRPCExpr { projection: Option<Box<ExecProjection>> },
    /// Leaf; `outer` resolves through a varref edge.
    XRPCParam { var: String, outer: String },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructorKind {
    Document,
    Text,
    Element,
    Attribute,
}

/// One vertex: rule, ordered parse-edge children, optional varref edge,
/// parent back-pointer.
#[derive(Debug, Clone)]
pub struct Vertex {
    pub rule: Rule,
    pub children: Vec<VertexId>,
    /// For `VarRef` and `XRPCParam` vertices: the `Var` vertex referenced.
    pub varref: Option<VertexId>,
    pub parent: Option<VertexId>,
}

/// The dependency graph.
#[derive(Debug, Clone)]
pub struct DGraph {
    verts: Vec<Vertex>,
    pub root: VertexId,
}

impl DGraph {
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.verts[id.0 as usize]
    }

    pub fn vertex_mut(&mut self, id: VertexId) -> &mut Vertex {
        &mut self.verts[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.verts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    pub fn ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.verts.len() as u32).map(VertexId)
    }

    fn push(&mut self, rule: Rule, children: Vec<VertexId>) -> VertexId {
        let id = VertexId(self.verts.len() as u32);
        for &c in &children {
            self.verts[c.0 as usize].parent = Some(id);
        }
        self.verts.push(Vertex { rule, children, varref: None, parent: None });
        id
    }

    /// `x ⊑p y`: is `y` reachable from `x` via parse edges only
    /// (reflexively)?
    pub fn parse_reaches(&self, x: VertexId, y: VertexId) -> bool {
        // equivalently: x is an ancestor-or-self of y in the parse tree
        let mut cur = Some(y);
        while let Some(c) = cur {
            if c == x {
                return true;
            }
            cur = self.vertex(c).parent;
        }
        false
    }

    /// `x ⊑ y`: is `y` reachable from `x` via parse and varref edges
    /// (reflexively)? This is the paper's "x depends on y".
    pub fn depends_on(&self, x: VertexId, y: VertexId) -> bool {
        let mut seen = vec![false; self.verts.len()];
        let mut stack = vec![x];
        while let Some(v) = stack.pop() {
            if v == y {
                return true;
            }
            if seen[v.0 as usize] {
                continue;
            }
            seen[v.0 as usize] = true;
            let vert = self.vertex(v);
            stack.extend(vert.children.iter().copied());
            if let Some(t) = vert.varref {
                stack.push(t);
            }
        }
        false
    }

    /// All vertices in the subgraph of `rs` (parse-edge induced, including
    /// `rs`), preorder.
    pub fn subgraph(&self, rs: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![rs];
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend(self.vertex(v).children.iter().rev().copied());
        }
        out
    }

    /// Varref edges leaving the subgraph of `rs`: pairs of
    /// (referencing vertex inside, `Var` vertex outside).
    pub fn outgoing_varrefs(&self, rs: VertexId) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for v in self.subgraph(rs) {
            if let Some(target) = self.vertex(v).varref {
                if !self.parse_reaches(rs, target) {
                    out.push((v, target));
                }
            }
        }
        out
    }

    /// Human-readable vertex label (Fig. 2 style).
    pub fn label(&self, id: VertexId) -> String {
        match &self.vertex(id).rule {
            Rule::Literal(a) => format!("Literal[{}]", a.to_lexical()),
            Rule::Empty => "()".to_string(),
            Rule::ExprSeq => "ExprSeq".to_string(),
            Rule::Var(v) => format!("Var[${v}]"),
            Rule::VarRef(v) => format!("VarRef[${v}]"),
            Rule::ContextItem => ".".to_string(),
            Rule::ForExpr => "ForExpr".to_string(),
            Rule::LetExpr => "LetExpr".to_string(),
            Rule::IfExpr => "IfExpr".to_string(),
            Rule::Typeswitch { .. } => "Typeswitch".to_string(),
            Rule::CompExpr(op) => op.symbol().to_string(),
            Rule::NodeCmp(op) => op.symbol().to_string(),
            Rule::OrderExpr(_) => "OrderExpr".to_string(),
            Rule::NodeSetExpr(op) => op.keyword().to_string(),
            Rule::Constructor { kind, static_name } => match static_name {
                Some(n) => format!("{kind:?}[{n}]"),
                None => format!("{kind:?}"),
            },
            Rule::AxisStep { axis, test } => {
                if *axis == Axis::Child {
                    format!("/{test}")
                } else if *axis == Axis::Attribute {
                    format!("@{test}")
                } else {
                    format!("/{}::{test}", axis.name())
                }
            }
            Rule::Root => "/".to_string(),
            Rule::Filter => "Filter".to_string(),
            Rule::FunCall(n) => format!("FunCall[{n}]"),
            Rule::Arith(op) => op.symbol().to_string(),
            Rule::And => "and".to_string(),
            Rule::Or => "or".to_string(),
            Rule::XRPCExpr { .. } => "XRPCExpr".to_string(),
            Rule::XRPCParam { var, outer } => format!("XRPCParam[${var}:=${outer}]"),
        }
    }

    /// Multi-line dump used by the `decompose_explain` example and tests.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for id in self.ids() {
            let v = self.vertex(id);
            out.push_str(&format!(
                "v{}: {} children={:?}",
                id.0,
                self.label(id),
                v.children.iter().map(|c| c.0).collect::<Vec<_>>()
            ));
            if let Some(t) = v.varref {
                out.push_str(&format!(" varref→v{}", t.0));
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the d-graph of a normalized XCore expression. Fails on unbound
/// variables (the normalizer guarantees closed queries).
pub fn build_dgraph(expr: &Expr) -> Result<DGraph, EvalError> {
    let mut g = DGraph { verts: Vec::new(), root: VertexId(0) };
    let mut scope: Vec<(String, VertexId)> = Vec::new();
    let root = build(&mut g, expr, &mut scope)?;
    g.root = root;
    Ok(g)
}

fn lookup(scope: &[(String, VertexId)], name: &str) -> Option<VertexId> {
    scope.iter().rev().find(|(n, _)| n == name).map(|(_, v)| *v)
}

fn build(
    g: &mut DGraph,
    e: &Expr,
    scope: &mut Vec<(String, VertexId)>,
) -> Result<VertexId, EvalError> {
    Ok(match e {
        Expr::Literal(a) => g.push(Rule::Literal(a.clone()), vec![]),
        Expr::Empty => g.push(Rule::Empty, vec![]),
        Expr::Sequence(es) => {
            let kids = es
                .iter()
                .map(|x| build(g, x, scope))
                .collect::<Result<Vec<_>, _>>()?;
            g.push(Rule::ExprSeq, kids)
        }
        Expr::VarRef(v) => {
            let target = lookup(scope, v);
            let id = g.push(Rule::VarRef(v.clone()), vec![]);
            // unbound refs are tolerated (shipped bodies reference params
            // bound at runtime); they simply carry no varref edge
            g.vertex_mut(id).varref = target;
            id
        }
        Expr::ContextItem => g.push(Rule::ContextItem, vec![]),
        Expr::For { var, seq, ret } | Expr::Let { var, value: seq, ret } => {
            let is_for = matches!(e, Expr::For { .. });
            let value = build(g, seq, scope)?;
            let var_vertex = g.push(Rule::Var(var.clone()), vec![value]);
            scope.push((var.clone(), var_vertex));
            let ret_vertex = build(g, ret, scope);
            scope.pop();
            let rule = if is_for { Rule::ForExpr } else { Rule::LetExpr };
            g.push(rule, vec![var_vertex, ret_vertex?])
        }
        Expr::If { cond, then, els } => {
            let c = build(g, cond, scope)?;
            let t = build(g, then, scope)?;
            let f = build(g, els, scope)?;
            g.push(Rule::IfExpr, vec![c, t, f])
        }
        Expr::Typeswitch { input, cases, default_var, default } => {
            // children: [input, case1 Var, case1 body, …, default Var, default body]
            let mut kids = vec![build(g, input, scope)?];
            let mut case_meta = Vec::new();
            for c in cases {
                case_meta.push((c.var.clone(), c.seq_type.clone()));
                let var_vertex = g.push(Rule::Var(c.var.clone()), vec![]);
                kids.push(var_vertex);
                scope.push((c.var.clone(), var_vertex));
                let body = build(g, &c.body, scope);
                scope.pop();
                kids.push(body?);
            }
            let dvar = g.push(Rule::Var(default_var.clone()), vec![]);
            kids.push(dvar);
            scope.push((default_var.clone(), dvar));
            let dbody = build(g, default, scope);
            scope.pop();
            kids.push(dbody?);
            g.push(
                Rule::Typeswitch { cases: case_meta, default_var: default_var.clone() },
                kids,
            )
        }
        Expr::Comparison { op, lhs, rhs } => {
            let l = build(g, lhs, scope)?;
            let r = build(g, rhs, scope)?;
            g.push(Rule::CompExpr(*op), vec![l, r])
        }
        Expr::NodeComparison { op, lhs, rhs } => {
            let l = build(g, lhs, scope)?;
            let r = build(g, rhs, scope)?;
            g.push(Rule::NodeCmp(*op), vec![l, r])
        }
        Expr::OrderBy { input, specs } => {
            let mut kids = vec![build(g, input, scope)?];
            let mut desc = Vec::new();
            for s in specs {
                kids.push(build(g, &s.key, scope)?);
                desc.push(s.descending);
            }
            g.push(Rule::OrderExpr(desc), kids)
        }
        Expr::NodeSet { op, lhs, rhs } => {
            let l = build(g, lhs, scope)?;
            let r = build(g, rhs, scope)?;
            g.push(Rule::NodeSetExpr(*op), vec![l, r])
        }
        Expr::Construct(c) => {
            let (kind, name, content) = match c {
                Constructor::Document { content } => (ConstructorKind::Document, None, content),
                Constructor::Text { content } => (ConstructorKind::Text, None, content),
                Constructor::Element { name, content } => {
                    (ConstructorKind::Element, Some(name), content)
                }
                Constructor::Attribute { name, content } => {
                    (ConstructorKind::Attribute, Some(name), content)
                }
            };
            let mut kids = Vec::new();
            let static_name = match name {
                Some(ElemName::Static(n)) => Some(n.clone()),
                Some(ElemName::Computed(e)) => {
                    kids.push(build(g, e, scope)?);
                    None
                }
                None => None,
            };
            kids.push(build(g, content, scope)?);
            g.push(Rule::Constructor { kind, static_name }, kids)
        }
        Expr::Path { start, steps } => {
            let mut cur = match start {
                Some(s) => build(g, s, scope)?,
                None => g.push(Rule::Root, vec![]),
            };
            for step in steps {
                let mut kids = vec![cur];
                for p in &step.predicates {
                    kids.push(build(g, p, scope)?);
                }
                cur = g.push(Rule::AxisStep { axis: step.axis, test: step.test.clone() }, kids);
            }
            cur
        }
        Expr::Filter { input, predicate } => {
            let i = build(g, input, scope)?;
            let p = build(g, predicate, scope)?;
            g.push(Rule::Filter, vec![i, p])
        }
        Expr::FunCall { name, args } => {
            let kids = args
                .iter()
                .map(|a| build(g, a, scope))
                .collect::<Result<Vec<_>, _>>()?;
            g.push(Rule::FunCall(name.clone()), kids)
        }
        Expr::And(l, r) | Expr::Or(l, r) => {
            let lv = build(g, l, scope)?;
            let rv = build(g, r, scope)?;
            g.push(if matches!(e, Expr::And(..)) { Rule::And } else { Rule::Or }, vec![lv, rv])
        }
        Expr::Arith { op, lhs, rhs } => {
            let l = build(g, lhs, scope)?;
            let r = build(g, rhs, scope)?;
            g.push(Rule::Arith(*op), vec![l, r])
        }
        Expr::Execute { peer, params, body, projection } => {
            let p = build(g, peer, scope)?;
            // params bind inside the body; their outer refs resolve here
            let mut param_ids = Vec::new();
            for param in params {
                let target = lookup(scope, &param.outer);
                let id = g.push(
                    Rule::XRPCParam { var: param.var.clone(), outer: param.outer.clone() },
                    vec![],
                );
                g.vertex_mut(id).varref = target;
                param_ids.push(id);
            }
            let n_before = scope.len();
            for (param, &id) in params.iter().zip(&param_ids) {
                scope.push((param.var.clone(), id));
            }
            let body_vertex = build(g, body, scope);
            scope.truncate(n_before);
            let mut kids = vec![p, body_vertex?];
            kids.extend(param_ids);
            g.push(Rule::XRPCExpr { projection: projection.clone() }, kids)
        }
    })
}

/// Extracts the expression represented by the subgraph rooted at `id`.
pub fn extract_expr(g: &DGraph, id: VertexId) -> Expr {
    let v = g.vertex(id);
    match &v.rule {
        Rule::Literal(a) => Expr::Literal(a.clone()),
        Rule::Empty => Expr::Empty,
        Rule::ExprSeq => {
            Expr::Sequence(v.children.iter().map(|&c| extract_expr(g, c)).collect())
        }
        Rule::Var(_) => extract_expr(g, v.children[0]),
        Rule::VarRef(name) => Expr::VarRef(name.clone()),
        Rule::ContextItem => Expr::ContextItem,
        Rule::ForExpr | Rule::LetExpr => {
            let var_vertex = g.vertex(v.children[0]);
            let Rule::Var(name) = &var_vertex.rule else {
                unreachable!("For/Let child 0 must be Var");
            };
            let value = extract_expr(g, var_vertex.children[0]).boxed();
            let ret = extract_expr(g, v.children[1]).boxed();
            if matches!(v.rule, Rule::ForExpr) {
                Expr::For { var: name.clone(), seq: value, ret }
            } else {
                Expr::Let { var: name.clone(), value, ret }
            }
        }
        Rule::IfExpr => Expr::If {
            cond: extract_expr(g, v.children[0]).boxed(),
            then: extract_expr(g, v.children[1]).boxed(),
            els: extract_expr(g, v.children[2]).boxed(),
        },
        Rule::Typeswitch { cases, default_var } => {
            // children: [input, case1 Var, case1 body, …, default Var, default body]
            let input = extract_expr(g, v.children[0]).boxed();
            let case_clauses = cases
                .iter()
                .enumerate()
                .map(|(i, (var, ty))| CaseClause {
                    var: var.clone(),
                    seq_type: ty.clone(),
                    body: extract_expr(g, v.children[2 + 2 * i]),
                })
                .collect();
            Expr::Typeswitch {
                input,
                cases: case_clauses,
                default_var: default_var.clone(),
                default: extract_expr(g, *v.children.last().unwrap()).boxed(),
            }
        }
        Rule::CompExpr(op) => Expr::Comparison {
            op: *op,
            lhs: extract_expr(g, v.children[0]).boxed(),
            rhs: extract_expr(g, v.children[1]).boxed(),
        },
        Rule::NodeCmp(op) => Expr::NodeComparison {
            op: *op,
            lhs: extract_expr(g, v.children[0]).boxed(),
            rhs: extract_expr(g, v.children[1]).boxed(),
        },
        Rule::OrderExpr(desc) => Expr::OrderBy {
            input: extract_expr(g, v.children[0]).boxed(),
            specs: v.children[1..]
                .iter()
                .zip(desc)
                .map(|(&k, &d)| OrderSpec { key: extract_expr(g, k), descending: d })
                .collect(),
        },
        Rule::NodeSetExpr(op) => Expr::NodeSet {
            op: *op,
            lhs: extract_expr(g, v.children[0]).boxed(),
            rhs: extract_expr(g, v.children[1]).boxed(),
        },
        Rule::Constructor { kind, static_name } => {
            let (name, content_idx) = match (static_name, v.children.len()) {
                (Some(n), _) => (Some(ElemName::Static(n.clone())), 0),
                (None, 2) => (Some(ElemName::Computed(extract_expr(g, v.children[0]).boxed())), 1),
                (None, _) => (None, 0),
            };
            let content = extract_expr(g, v.children[content_idx]).boxed();
            Expr::Construct(match kind {
                ConstructorKind::Document => Constructor::Document { content },
                ConstructorKind::Text => Constructor::Text { content },
                ConstructorKind::Element => {
                    Constructor::Element { name: name.expect("element name"), content }
                }
                ConstructorKind::Attribute => {
                    Constructor::Attribute { name: name.expect("attribute name"), content }
                }
            })
        }
        Rule::AxisStep { axis, test } => {
            let input = v.children[0];
            let predicates = v.children[1..].iter().map(|&p| extract_expr(g, p)).collect();
            let step = Step { axis: *axis, test: test.clone(), predicates };
            // merge with an inner path when possible for readability
            match extract_expr(g, input) {
                Expr::Path { start, mut steps } => {
                    steps.push(step);
                    Expr::Path { start, steps }
                }
                inner if matches!(g.vertex(input).rule, Rule::Root) => {
                    let _ = inner;
                    Expr::Path { start: None, steps: vec![step] }
                }
                inner => Expr::Path { start: Some(inner.boxed()), steps: vec![step] },
            }
        }
        Rule::Root => Expr::Path { start: None, steps: vec![] },
        Rule::Filter => Expr::Filter {
            input: extract_expr(g, v.children[0]).boxed(),
            predicate: extract_expr(g, v.children[1]).boxed(),
        },
        Rule::FunCall(name) => Expr::FunCall {
            name: name.clone(),
            args: v.children.iter().map(|&c| extract_expr(g, c)).collect(),
        },
        Rule::Arith(op) => Expr::Arith {
            op: *op,
            lhs: extract_expr(g, v.children[0]).boxed(),
            rhs: extract_expr(g, v.children[1]).boxed(),
        },
        Rule::And => Expr::And(
            extract_expr(g, v.children[0]).boxed(),
            extract_expr(g, v.children[1]).boxed(),
        ),
        Rule::Or => Expr::Or(
            extract_expr(g, v.children[0]).boxed(),
            extract_expr(g, v.children[1]).boxed(),
        ),
        Rule::XRPCExpr { projection } => {
            let peer = extract_expr(g, v.children[0]).boxed();
            let body = extract_expr(g, v.children[1]).boxed();
            let params = v.children[2..]
                .iter()
                .map(|&p| {
                    let Rule::XRPCParam { var, outer } = &g.vertex(p).rule else {
                        unreachable!("XRPCExpr trailing children must be XRPCParam");
                    };
                    XrpcParam { var: var.clone(), outer: outer.clone() }
                })
                .collect();
            Expr::Execute { peer, params, body, projection: projection.clone() }
        }
        Rule::XRPCParam { var, .. } => Expr::VarRef(var.clone()),
    }
}

/// Extracts the whole query.
pub fn to_expr(g: &DGraph) -> Expr {
    extract_expr(g, g.root)
}

/// Support for graph surgery used by XRPCExpr insertion.
impl DGraph {
    /// Adds a fresh vertex (used by the insertion procedure).
    pub fn add_vertex(&mut self, rule: Rule, children: Vec<VertexId>) -> VertexId {
        self.push(rule, children)
    }

    /// Replaces `old_child` with `new_child` in `parent`'s child list.
    pub fn replace_child(&mut self, parent: VertexId, old_child: VertexId, new_child: VertexId) {
        let p = self.vertex_mut(parent);
        for c in &mut p.children {
            if *c == old_child {
                *c = new_child;
            }
        }
        self.vertex_mut(new_child).parent = Some(parent);
    }

    /// Renames all `VarRef[$from]` vertices inside the subgraph of `rs`
    /// whose varref edge targets `target`, pointing them at `new_target`
    /// with name `to`.
    pub fn retarget_varrefs(
        &mut self,
        rs: VertexId,
        target: VertexId,
        to: &str,
        new_target: VertexId,
    ) {
        for v in self.subgraph(rs) {
            let vert = self.vertex_mut(v);
            if vert.varref == Some(target) {
                if let Rule::VarRef(name) = &mut vert.rule {
                    *name = to.to_string();
                }
                vert.varref = Some(new_target);
            }
        }
    }
}

/// Var-name → vertex map of all `Var` vertices (diagnostics).
pub fn var_vertices(g: &DGraph) -> HashMap<String, Vec<VertexId>> {
    let mut out: HashMap<String, Vec<VertexId>> = HashMap::new();
    for id in g.ids() {
        if let Rule::Var(name) = &g.vertex(id).rule {
            out.entry(name.clone()).or_default().push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xquery::{normalize, parse_query};

    fn graph_of(q: &str) -> DGraph {
        let m = parse_query(q).unwrap();
        let e = normalize(&m).unwrap();
        build_dgraph(&e).unwrap()
    }

    #[test]
    fn path_steps_become_chained_vertices() {
        let g = graph_of("doc(\"d.xml\")/child::people/child::person");
        // root is the outermost step /person
        match &g.vertex(g.root).rule {
            Rule::AxisStep { test: NameTest::Name(n), .. } => assert_eq!(n, "person"),
            other => panic!("{other:?}"),
        }
        let inner = g.vertex(g.root).children[0];
        match &g.vertex(inner).rule {
            Rule::AxisStep { test: NameTest::Name(n), .. } => assert_eq!(n, "people"),
            other => panic!("{other:?}"),
        }
        let doc = g.vertex(inner).children[0];
        assert!(matches!(&g.vertex(doc).rule, Rule::FunCall(n) if n == "doc"));
    }

    #[test]
    fn varref_edges_resolve_bindings() {
        let g = graph_of("let $s := doc(\"d.xml\") return $s/child::a");
        // find the VarRef vertex and its Var target
        let varref = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::VarRef(n) if n == "s"))
            .unwrap();
        let target = g.vertex(varref).varref.expect("varref edge");
        assert!(matches!(&g.vertex(target).rule, Rule::Var(n) if n == "s"));
    }

    #[test]
    fn depends_on_via_varref() {
        // mirrors Example 3.1: v15 ⊑v v3 through the varref edge
        let g = graph_of("let $s := doc(\"d.xml\")/child::a return for $x in $s return $x");
        let var_s = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::Var(n) if n == "s"))
            .unwrap();
        let for_vertex = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::ForExpr))
            .unwrap();
        assert!(g.depends_on(for_vertex, var_s));
        // but not parse-reachable
        assert!(!g.parse_reaches(for_vertex, var_s));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        for q in [
            "doc(\"d.xml\")/child::a/child::b",
            "let $s := doc(\"d.xml\") return for $x in $s/child::a return if ($x/child::b = 1) then $x else ()",
            "(doc(\"a.xml\")//x union doc(\"b.xml\")//y) intersect doc(\"a.xml\")//z",
            "element out { doc(\"d.xml\")/child::a }",
            "typeswitch (doc(\"d.xml\")) case $n as node() return $n default $d return ()",
            "for $x in doc(\"d.xml\")//p order by $x/k descending return $x",
            "execute at { \"peer1\" } params ($a := $t) { $a/child::id }",
            "1 + 2 * 3",
            "$u and ($v or $w)",
        ] {
            let m = parse_query(q).unwrap();
            let g = build_dgraph(&m.body).unwrap();
            let back = to_expr(&g);
            // compare printed forms (Path nesting may differ structurally)
            assert_eq!(back.to_string(), m.body.to_string(), "roundtrip of {q}");
        }
    }

    #[test]
    fn subgraph_excludes_siblings() {
        let g = graph_of("let $c := doc(\"b.xml\") return for $e in $c/child::x return $e");
        let for_vertex =
            g.ids().find(|&id| matches!(&g.vertex(id).rule, Rule::ForExpr)).unwrap();
        let sub = g.subgraph(for_vertex);
        // the let's Var[$c] subtree is not part of the for's subgraph
        let var_c = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::Var(n) if n == "c"))
            .unwrap();
        assert!(!sub.contains(&var_c));
        assert!(sub.contains(&for_vertex));
    }

    #[test]
    fn outgoing_varrefs_found() {
        // mirrors Example 3.2: the for over $c and $t references outside vars
        let g = graph_of(
            "let $c := doc(\"b.xml\") return let $t := doc(\"a.xml\")//p return \
             for $e in $c/child::x return if ($e/attribute::id = $t/child::id) then $e else ()",
        );
        let for_vertex =
            g.ids().find(|&id| matches!(&g.vertex(id).rule, Rule::ForExpr)).unwrap();
        let out = g.outgoing_varrefs(for_vertex);
        let targets: Vec<&str> = out
            .iter()
            .map(|(_, t)| match &g.vertex(*t).rule {
                Rule::Var(n) => n.as_str(),
                _ => "?",
            })
            .collect();
        assert!(targets.contains(&"c"));
        assert!(targets.contains(&"t"));
    }

    #[test]
    fn dump_is_readable() {
        let g = graph_of("doc(\"d.xml\")/child::a");
        let d = g.dump();
        assert!(d.contains("FunCall[doc]"));
        assert!(d.contains("/a"));
    }
}
