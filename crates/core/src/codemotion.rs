//! Distributed code motion (Section IV, Example 4.3).
//!
//! Subexpressions of a shipped function body that depend **only on shipped
//! parameters** can better be evaluated on the caller side, where the
//! parameter values live natively: instead of shipping full `person` nodes
//! only to extract `$para1/child::id` remotely, the caller extracts the
//! `id`s and ships those. The moved expression becomes an extra parameter;
//! the original parameter is dropped when no longer used.
//!
//! Safety follows the paper: only *d-point-shaped* expressions are moved —
//! here, predicate-free paths of downward axes rooted at a parameter — so
//! pass-by-value copying cannot change their meaning.

use std::collections::HashSet;

use xqd_xml::Axis;
use xqd_xquery::ast::{Expr, XrpcParam};
use xqd_xquery::normalize::map_children_infallible;

/// Applies distributed code motion to every `Execute` in the expression.
pub fn distributed_code_motion(e: &Expr) -> Expr {
    let mut counter = 0u32;
    rewrite(e, &mut counter)
}

fn rewrite(e: &Expr, counter: &mut u32) -> Expr {
    let rebuilt = map_children_infallible(e, &mut |c| rewrite(c, counter));
    let Expr::Execute { peer, params, body, projection } = &rebuilt else {
        return rebuilt;
    };
    let param_vars: HashSet<&str> = params.iter().map(|p| p.var.as_str()).collect();

    // find and replace movable candidates in the body
    let mut moved: Vec<Moved> = Vec::new();
    let new_body = extract_candidates(body, &param_vars, &mut moved, counter, false);
    if moved.is_empty() {
        return rebuilt;
    }

    // drop original parameters no longer referenced
    let kept: Vec<XrpcParam> = params
        .iter()
        .filter(|p| uses_var(&new_body, &p.var))
        .cloned()
        .collect();

    // new parameters + caller-side lets evaluating the moved expressions
    let mut new_params = kept;
    let mut lets: Vec<(String, Expr)> = Vec::new();
    for m in &moved {
        let outer_var = format!("{}v", m.var);
        // candidate references parameter vars; rewrite to their outer names
        let mut outer_expr = m.candidate.clone();
        for p in params {
            outer_expr = xqd_xquery::rename_var(&outer_expr, &p.var, &p.outer);
        }
        // the fcn2new effect (Example 4.3): when the body only atomizes the
        // moved value, ship the extracted atomic values instead of nodes —
        // "extract the string value of id at peer A and only ship the
        // strings"
        if m.atomized_only {
            outer_expr = Expr::FunCall { name: "data".into(), args: vec![outer_expr] };
        }
        new_params.push(XrpcParam { var: m.var.clone(), outer: outer_var.clone() });
        lets.push((outer_var, outer_expr));
    }

    let mut out = Expr::Execute {
        peer: peer.clone(),
        params: new_params,
        body: new_body.boxed(),
        projection: projection.clone(),
    };
    for (var, value) in lets.into_iter().rev() {
        out = Expr::Let { var, value: value.boxed(), ret: out.boxed() };
    }
    out
}

/// One moved subexpression.
struct Moved {
    var: String,
    candidate: Expr,
    /// True while every occurrence sits in an atomizing position
    /// (comparison/arithmetic operand, atomizing built-in argument): the
    /// caller may then ship `data(candidate)` — atoms instead of nodes.
    atomized_only: bool,
}

/// Replaces maximal movable candidates with fresh variable references,
/// collecting them into `moved`. `atomizing` tracks whether the current
/// position consumes only the atomized value.
fn extract_candidates(
    e: &Expr,
    params: &HashSet<&str>,
    moved: &mut Vec<Moved>,
    counter: &mut u32,
    atomizing: bool,
) -> Expr {
    if is_movable(e, params) {
        // reuse a previously moved identical expression
        if let Some(m) = moved.iter_mut().find(|m| m.candidate == *e) {
            m.atomized_only &= atomizing;
            return Expr::VarRef(m.var.clone());
        }
        *counter += 1;
        let var = format!("cm{counter}");
        moved.push(Moved { var: var.clone(), candidate: e.clone(), atomized_only: atomizing });
        return Expr::VarRef(var);
    }
    match e {
        Expr::Comparison { op, lhs, rhs } => Expr::Comparison {
            op: *op,
            lhs: extract_candidates(lhs, params, moved, counter, true).boxed(),
            rhs: extract_candidates(rhs, params, moved, counter, true).boxed(),
        },
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: extract_candidates(lhs, params, moved, counter, true).boxed(),
            rhs: extract_candidates(rhs, params, moved, counter, true).boxed(),
        },
        Expr::FunCall { name, args } if is_atomizing_builtin(name) => Expr::FunCall {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| extract_candidates(a, params, moved, counter, true))
                .collect(),
        },
        _ => map_children_infallible(e, &mut |c| {
            extract_candidates(c, params, moved, counter, false)
        }),
    }
}

fn is_atomizing_builtin(name: &str) -> bool {
    matches!(
        name.strip_prefix("fn:").unwrap_or(name),
        "string"
            | "data"
            | "number"
            | "concat"
            | "string-join"
            | "contains"
            | "starts-with"
            | "string-length"
            | "substring"
            | "upper-case"
            | "lower-case"
            | "normalize-space"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "distinct-values"
    )
}

/// A candidate is a predicate-free path of downward axis steps whose start
/// is a parameter reference — the d-point shape that is safe to move under
/// pass-by-value.
fn is_movable(e: &Expr, params: &HashSet<&str>) -> bool {
    match e {
        Expr::Path { start: Some(start), steps } => {
            !steps.is_empty()
                && steps
                    .iter()
                    .all(|s| s.predicates.is_empty() && is_downward_only(s.axis))
                && matches!(start.as_ref(), Expr::VarRef(v) if params.contains(v.as_str()))
        }
        _ => false,
    }
}

fn is_downward_only(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Child | Axis::Attribute | Axis::Descendant | Axis::DescendantOrSelf | Axis::SelfAxis
    )
}

fn uses_var(e: &Expr, var: &str) -> bool {
    xqd_xquery::free_vars(e).contains(var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xquery::parse_expr_str;

    #[test]
    fn example_4_3_id_extraction_moves_to_caller() {
        // fcn2($t): for $e in doc(B)… return if ($e/@id = $para1/child::id)…
        let e = parse_expr_str(
            "let $t := doc(\"xrpc://A/students.xml\")//person return \
             execute at { \"B\" } params ($para1 := $t) { \
               for $e in doc(\"xrpc://B/course42.xml\")/child::enroll/child::exam \
               return if ($e/attribute::id = $para1/child::id) then $e else () }",
        )
        .unwrap();
        let out = distributed_code_motion(&e);
        let s = out.to_string();
        // the candidate becomes a caller-side let over the ORIGINAL binding;
        // being comparison-only, the string values ship (fcn2new's
        // xs:string* parameter)
        assert!(s.contains("let $cm1v := data($t/child::id)"), "{s}");
        // the body now references the new parameter, original param dropped
        assert!(s.contains("params ($cm1 := $cm1v)"), "{s}");
        assert!(!s.contains("$para1/child::id"), "{s}");
    }

    #[test]
    fn original_param_kept_when_still_used() {
        let e = parse_expr_str(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { ($q, $q/child::id) }",
        )
        .unwrap();
        let out = distributed_code_motion(&e);
        let s = out.to_string();
        assert!(s.contains("$q := $t"), "original param still shipped: {s}");
        assert!(s.contains("$cm1 := $cm1v"), "{s}");
    }

    #[test]
    fn identical_candidates_share_one_parameter() {
        let e = parse_expr_str(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) \
             { ($q/child::id = 1, $q/child::id = 2) }",
        )
        .unwrap();
        let out = distributed_code_motion(&e);
        let s = out.to_string();
        assert_eq!(s.matches("cm1 :=").count(), 1, "{s}");
        assert!(!s.contains("cm2"), "{s}");
    }

    #[test]
    fn reverse_axis_paths_are_not_moved() {
        let e = parse_expr_str(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { $q/parent::x }",
        )
        .unwrap();
        let out = distributed_code_motion(&e);
        assert!(!out.to_string().contains("cm1"), "{out}");
    }

    #[test]
    fn paths_over_remote_docs_stay_remote() {
        let e = parse_expr_str(
            "execute at { \"B\" } params () { doc(\"xrpc://B/b.xml\")/child::x }",
        )
        .unwrap();
        let out = distributed_code_motion(&e);
        assert_eq!(out, e, "nothing depends on parameters only");
    }

    #[test]
    fn candidates_with_predicates_stay() {
        let e = parse_expr_str(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { $q/child::id[. = 1] }",
        )
        .unwrap();
        let out = distributed_code_motion(&e);
        assert!(!out.to_string().contains("cm1"), "{out}");
    }
}
