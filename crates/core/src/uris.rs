//! URI dependency sets `D(v)` and the `hasMatchingDoc` predicate.
//!
//! `D(v)` collects, per vertex, the `fn:doc()` applications it can reach —
//! each tagged with the vertex where the document is opened, so two loads of
//! the *same URI through different calls* stay distinguishable (that is
//! precisely the situation pass-by-fragment cannot repair: nodes from two
//! shreddings of one document never regain shared identity).
//!
//! Following the paper: a computed `doc(Expr)` contributes the wildcard
//! `*`, `fn:collection()` is treated as `doc(*)`, and element construction
//! is assigned an artificial unique URI `doc(vi::vi)`.
//!
//! Two variants are computed:
//! * `D_parse` (parse edges only, the paper's definition) — drives the
//!   equivalence classes behind *interesting* decomposition points;
//! * `D_full` (parse + varref edges, the footnote-3 refinement) — drives
//!   `hasMatchingDoc`, where missing a variable-carried dependency would be
//!   unsound.

use std::collections::{BTreeSet, HashMap};

use crate::dgraph::{DGraph, Rule, VertexId};

/// One URI dependency: the (possibly wildcard) URI and the vertex where the
/// document is opened or the element is constructed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UriDep {
    /// `doc("uri") :: v`
    Doc { uri: String, vertex: VertexId },
    /// `doc(*) :: v` — computed URI or `fn:collection()`.
    Wildcard { vertex: VertexId },
    /// `doc(vi::vi)` — element/document constructor at `v`.
    Constructed { vertex: VertexId },
}

impl UriDep {
    pub fn uri(&self) -> Option<&str> {
        match self {
            UriDep::Doc { uri, .. } => Some(uri),
            _ => None,
        }
    }

    /// Can two dependencies refer to the same document? (wildcards match
    /// any real document; constructed fragments match nothing else).
    pub fn may_match(&self, other: &UriDep) -> bool {
        match (self, other) {
            (UriDep::Constructed { .. }, _) | (_, UriDep::Constructed { .. }) => false,
            (UriDep::Wildcard { .. }, _) | (_, UriDep::Wildcard { .. }) => true,
            (UriDep::Doc { uri: a, .. }, UriDep::Doc { uri: b, .. }) => a == b,
        }
    }
}

/// The per-vertex URI dependency sets of a d-graph.
#[derive(Debug)]
pub struct UriAnalysis {
    /// `D(v)` over parse edges (the paper's `⊑p`-based definition).
    pub parse: Vec<BTreeSet<UriDep>>,
    /// `D(v)` over parse + varref edges (footnote-3 precision).
    pub full: Vec<BTreeSet<UriDep>>,
}

/// The dependency contributed by the vertex itself, if any.
fn own_dep(g: &DGraph, v: VertexId) -> Option<UriDep> {
    match &g.vertex(v).rule {
        Rule::FunCall(name) => {
            let bare = name.strip_prefix("fn:").unwrap_or(name);
            match bare {
                "doc" => {
                    let kids = &g.vertex(v).children;
                    match kids.first().map(|&c| &g.vertex(c).rule) {
                        Some(Rule::Literal(a)) => {
                            Some(UriDep::Doc { uri: a.to_lexical(), vertex: v })
                        }
                        _ => Some(UriDep::Wildcard { vertex: v }),
                    }
                }
                "collection" => Some(UriDep::Wildcard { vertex: v }),
                _ => None,
            }
        }
        Rule::Constructor { .. } => Some(UriDep::Constructed { vertex: v }),
        _ => None,
    }
}

/// Computes both dependency-set variants for every vertex.
pub fn analyze_uris(g: &DGraph) -> UriAnalysis {
    let n = g.len();
    let mut parse: Vec<BTreeSet<UriDep>> = vec![BTreeSet::new(); n];
    let mut full: Vec<Option<BTreeSet<UriDep>>> = vec![None; n];

    // parse-based sets bottom-up: children were pushed before parents, so a
    // forward scan sees children first... NOT guaranteed by build order for
    // all rules; use explicit post-order instead.
    let order = post_order(g);
    for &v in &order {
        let mut set = BTreeSet::new();
        if let Some(d) = own_dep(g, v) {
            set.insert(d);
        }
        for &c in &g.vertex(v).children {
            set.extend(parse[c.0 as usize].iter().cloned());
        }
        parse[v.0 as usize] = set;
    }

    // full sets: fixpoint-free DFS with memoization (varref edges cannot
    // form cycles in lexically-scoped queries; a visiting guard keeps the
    // traversal terminating regardless)
    fn compute_full(
        g: &DGraph,
        v: VertexId,
        full: &mut Vec<Option<BTreeSet<UriDep>>>,
        visiting: &mut Vec<bool>,
    ) -> BTreeSet<UriDep> {
        if let Some(s) = &full[v.0 as usize] {
            return s.clone();
        }
        if visiting[v.0 as usize] {
            return BTreeSet::new();
        }
        visiting[v.0 as usize] = true;
        let mut set = BTreeSet::new();
        if let Some(d) = own_dep(g, v) {
            set.insert(d);
        }
        let vert = g.vertex(v).clone();
        for c in vert.children {
            set.extend(compute_full(g, c, full, visiting));
        }
        if let Some(t) = vert.varref {
            set.extend(compute_full(g, t, full, visiting));
        }
        visiting[v.0 as usize] = false;
        full[v.0 as usize] = Some(set.clone());
        set
    }
    let mut visiting = vec![false; n];
    for v in g.ids() {
        compute_full(g, v, &mut full, &mut visiting);
    }

    UriAnalysis {
        parse,
        full: full.into_iter().map(|s| s.unwrap_or_default()).collect(),
    }
}

fn post_order(g: &DGraph) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(g.len());
    let mut stack = vec![(g.root, false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            out.push(v);
            continue;
        }
        stack.push((v, true));
        for &c in g.vertex(v).children.iter() {
            stack.push((c, false));
        }
    }
    // vertices disconnected from the root (none in well-formed graphs) are
    // appended so indices stay total
    if out.len() < g.len() {
        let mut seen = vec![false; g.len()];
        for &v in &out {
            seen[v.0 as usize] = true;
        }
        for v in g.ids() {
            if !seen[v.0 as usize] {
                out.push(v);
            }
        }
    }
    out
}

impl UriAnalysis {
    /// The paper's `hasMatchingDoc(v)`: does `v` depend on **two different
    /// applications** of `fn:doc()` that may open the same document? This is
    /// exactly the situation where result sequences can mix nodes from
    /// multiple shreddings, which no message format can repair.
    pub fn has_matching_doc(&self, v: VertexId) -> bool {
        let deps: Vec<&UriDep> = self.full[v.0 as usize].iter().collect();
        for (i, a) in deps.iter().enumerate() {
            for b in deps.iter().skip(i + 1) {
                if a.may_match(b) {
                    return true;
                }
            }
        }
        false
    }

    /// Groups vertices into equivalence classes by their (non-empty)
    /// parse-based `D(v)`.
    pub fn equivalence_classes(&self, g: &DGraph) -> HashMap<BTreeSet<UriDep>, Vec<VertexId>> {
        let mut out: HashMap<BTreeSet<UriDep>, Vec<VertexId>> = HashMap::new();
        for v in g.ids() {
            let d = &self.parse[v.0 as usize];
            if !d.is_empty() {
                out.entry(d.clone()).or_default().push(v);
            }
        }
        out
    }
}

/// Splits an `xrpc://host/name` URI into `(host, document name)`.
pub fn split_xrpc_uri(uri: &str) -> Option<(&str, &str)> {
    let rest = uri.strip_prefix("xrpc://")?;
    let slash = rest.find('/')?;
    Some((&rest[..slash], &rest[slash + 1..]))
}

/// If every document URI in `deps` lives on one `xrpc://` host, returns that
/// host — the only peer the subexpression can be shipped to. Wildcards,
/// local documents and mixed hosts return `None`. Constructed fragments are
/// location-free and ignored.
pub fn single_xrpc_host(deps: &BTreeSet<UriDep>) -> Option<String> {
    let mut host: Option<&str> = None;
    let mut saw_doc = false;
    for d in deps {
        match d {
            UriDep::Constructed { .. } => {}
            UriDep::Wildcard { .. } => return None,
            UriDep::Doc { uri, .. } => {
                saw_doc = true;
                let (h, _) = split_xrpc_uri(uri)?;
                match host {
                    None => host = Some(h),
                    Some(prev) if prev == h => {}
                    Some(_) => return None,
                }
            }
        }
    }
    if saw_doc {
        host.map(str::to_string)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgraph::build_dgraph;
    use xqd_xquery::{normalize, parse_query};

    fn graph_of(q: &str) -> DGraph {
        let m = parse_query(q).unwrap();
        let e = normalize(&m).unwrap();
        build_dgraph(&e).unwrap()
    }

    #[test]
    fn doc_literal_dependency() {
        let g = graph_of("doc(\"xrpc://A/d.xml\")/child::x");
        let a = analyze_uris(&g);
        let root_deps = &a.parse[g.root.0 as usize];
        assert_eq!(root_deps.len(), 1);
        assert!(matches!(
            root_deps.iter().next().unwrap(),
            UriDep::Doc { uri, .. } if uri == "xrpc://A/d.xml"
        ));
    }

    #[test]
    fn computed_doc_is_wildcard() {
        let g = graph_of("doc(concat(\"a\", \".xml\"))");
        let a = analyze_uris(&g);
        assert!(matches!(
            a.parse[g.root.0 as usize].iter().next().unwrap(),
            UriDep::Wildcard { .. }
        ));
    }

    #[test]
    fn constructor_gets_unique_uri() {
        let g = graph_of("(element a { () }, element a { () })");
        let a = analyze_uris(&g);
        let deps = &a.parse[g.root.0 as usize];
        assert_eq!(deps.len(), 2, "two constructors, two artificial URIs");
        let v: Vec<_> = deps.iter().collect();
        assert!(!v[0].may_match(v[1]), "constructed URIs never match");
    }

    #[test]
    fn parse_vs_full_dependency() {
        let g = graph_of(
            "let $s := doc(\"xrpc://A/d.xml\")/child::x return for $y in $s return $y",
        );
        let a = analyze_uris(&g);
        // the ForExpr reaches doc() only through the varref on $s
        let for_vertex = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::ForExpr))
            .unwrap();
        assert!(a.parse[for_vertex.0 as usize].is_empty());
        assert_eq!(a.full[for_vertex.0 as usize].len(), 1);
    }

    #[test]
    fn has_matching_doc_same_uri_twice() {
        let g = graph_of("(doc(\"xrpc://A/d.xml\")//x, doc(\"xrpc://A/d.xml\")//y)");
        let a = analyze_uris(&g);
        assert!(a.has_matching_doc(g.root), "same URI opened twice");
    }

    #[test]
    fn no_matching_doc_for_single_load() {
        let g = graph_of("(doc(\"xrpc://A/d.xml\")//x, doc(\"xrpc://B/e.xml\")//y)");
        let a = analyze_uris(&g);
        assert!(!a.has_matching_doc(g.root), "two different documents");
    }

    #[test]
    fn wildcard_matches_everything() {
        let g = graph_of("(doc(\"xrpc://A/d.xml\")//x, doc($u)//y)");
        let a = analyze_uris(&g);
        assert!(a.has_matching_doc(g.root));
    }

    #[test]
    fn single_load_through_variable_has_no_match() {
        // one doc() call used twice through a variable is SAFE: it is a
        // single application (same vertex)
        let g = graph_of(
            "let $d := doc(\"xrpc://A/d.xml\") return ($d//x, $d//y)",
        );
        let a = analyze_uris(&g);
        assert!(!a.has_matching_doc(g.root));
    }

    #[test]
    fn xrpc_uri_split() {
        assert_eq!(split_xrpc_uri("xrpc://peer1/d.xml"), Some(("peer1", "d.xml")));
        assert_eq!(split_xrpc_uri("http://a/b"), None);
        assert_eq!(split_xrpc_uri("xrpc://hostonly"), None);
    }

    #[test]
    fn single_host_extraction() {
        let g = graph_of("(doc(\"xrpc://A/d.xml\")//x, doc(\"xrpc://A/e.xml\")//y)");
        let a = analyze_uris(&g);
        assert_eq!(single_xrpc_host(&a.parse[g.root.0 as usize]), Some("A".to_string()));

        let g2 = graph_of("(doc(\"xrpc://A/d.xml\")//x, doc(\"xrpc://B/e.xml\")//y)");
        let a2 = analyze_uris(&g2);
        assert_eq!(single_xrpc_host(&a2.parse[g2.root.0 as usize]), None);

        let g3 = graph_of("doc(\"local.xml\")//x");
        let a3 = analyze_uris(&g3);
        assert_eq!(single_xrpc_host(&a3.parse[g3.root.0 as usize]), None);
    }

    #[test]
    fn equivalence_classes_partition_by_deps() {
        let g = graph_of(
            "let $s := doc(\"xrpc://A/d.xml\")/child::x return \
             for $e in doc(\"xrpc://B/e.xml\")/child::y return if ($e = $s) then $e else ()",
        );
        let a = analyze_uris(&g);
        let classes = a.equivalence_classes(&g);
        // classes: {A}, {B}, {A,B}
        assert_eq!(classes.len(), 3);
    }
}
