//! Let-motion normalization (Section IV, "Normalization").
//!
//! Rewriting operates on parse edges only, so whether a subexpression is
//! written inline or referenced through a `let` changes what gets shipped.
//! To be robust against this syntactic variation, `let`-bindings are moved
//! **down** to just above the lowest common ancestor of all references to
//! their variable — turning Qc2 into Qn2 (Table III) and thereby relating
//! `doc()` calls to their uses through parse edges.
//!
//! Unused bindings are dropped (XQuery is pure, so this is
//! semantics-preserving). Sinking stops when it would capture the binding's
//! free variables under a shadowing binder.

use xqd_xquery::ast::{Expr, OrderSpec, Step};
use xqd_xquery::normalize::{free_vars, map_children_infallible};

/// Applies let-motion to the whole expression, bottom-up, repeatedly until
/// a fixpoint (a sunk let may enable sinking an outer one).
pub fn let_motion(e: &Expr) -> Expr {
    let mut cur = e.clone();
    for _ in 0..16 {
        let next = sink_all(&cur);
        if next == cur {
            return next;
        }
        cur = next;
    }
    cur
}

fn sink_all(e: &Expr) -> Expr {
    let rebuilt = map_children_infallible(e, &mut sink_all);
    if let Expr::Let { var, value, ret } = &rebuilt {
        return sink_let(var, value, ret);
    }
    rebuilt
}

/// Counts free occurrences of `$var` in `e` (stopping at shadowing binds).
fn count_uses(e: &Expr, var: &str) -> usize {
    match e {
        Expr::VarRef(v) => usize::from(v == var),
        Expr::For { var: v, seq, ret } | Expr::Let { var: v, value: seq, ret } => {
            count_uses(seq, var) + if v == var { 0 } else { count_uses(ret, var) }
        }
        Expr::Typeswitch { input, cases, default_var, default } => {
            let mut n = count_uses(input, var);
            for c in cases {
                if c.var != var {
                    n += count_uses(&c.body, var);
                }
            }
            if default_var != var {
                n += count_uses(default, var);
            }
            n
        }
        Expr::Execute { peer, params, body, .. } => {
            let mut n = count_uses(peer, var);
            n += params.iter().filter(|p| p.outer == var).count();
            if !params.iter().any(|p| p.var == var) {
                n += count_uses(body, var);
            }
            n
        }
        other => {
            let mut n = 0;
            for_each_child(other, &mut |c| n += count_uses(c, var));
            n
        }
    }
}

fn for_each_child(e: &Expr, f: &mut impl FnMut(&Expr)) {
    // reuse map_children to enumerate; cheap because we only read
    let _ = map_children_infallible(e, &mut |c| {
        f(c);
        c.clone()
    });
}

/// Sinks one binding into `ret` as deep as possible.
fn sink_let(var: &str, value: &Expr, ret: &Expr) -> Expr {
    match count_uses(ret, var) {
        0 => ret.clone(),
        _ => sink_into(var, value, ret),
    }
}

/// Places `let $var := value` just above the LCA of all uses within `e`.
fn sink_into(var: &str, value: &Expr, e: &Expr) -> Expr {
    // if exactly one direct child subtree contains all the uses, descend —
    // unless that crossing would capture a free variable of `value`
    let fv = free_vars(value);
    let wrap = |e: &Expr| Expr::Let {
        var: var.to_string(),
        value: value.clone().boxed(),
        ret: e.clone().boxed(),
    };

    // a VarRef itself: `let $v := X return $v` collapses to X
    if let Expr::VarRef(v) = e {
        if v == var {
            return value.clone();
        }
    }

    let children = direct_children(e);
    let mut holder: Option<usize> = None;
    for (i, c) in children.iter().enumerate() {
        if count_uses(c, var) > 0 {
            if holder.is_some() {
                return wrap(e); // uses split across children: stop here
            }
            holder = Some(i);
        }
    }
    let Some(idx) = holder else {
        return wrap(e); // uses live in non-child positions (e.g. Execute params)
    };

    // capture check: descending below a binder that binds one of value's
    // free variables (or rebinds $var itself) would change meaning
    if binds_any(e, idx, &fv) || binds_name(e, idx, var) {
        return wrap(e);
    }
    // evaluation-count check: never sink into a per-iteration or remotely
    // evaluated position (for-loop bodies, predicates, order keys, shipped
    // bodies) — the paper's Qn2 keeps `let $t` above the exam loop
    if blocks_descent(e, idx) {
        return wrap(e);
    }

    replace_child(e, idx, &sink_into(var, value, &children[idx]))
}

/// The direct sub-expressions of `e`, in a stable order matching
/// [`replace_child`].
fn direct_children(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    for_each_child(e, &mut |c| out.push(c.clone()));
    out
}

/// Does descending into child `idx` of `e` cross a binder for any name in
/// `names`?
fn binds_any(e: &Expr, idx: usize, names: &std::collections::HashSet<String>) -> bool {
    names.iter().any(|n| binds_name(e, idx, n))
}

/// Positions evaluated more than once (per item/candidate) or on a remote
/// peer: sinking a binding there would change evaluation count or site.
fn blocks_descent(e: &Expr, idx: usize) -> bool {
    match e {
        Expr::For { .. } => idx == 1,               // loop body
        Expr::Filter { .. } => idx == 1,            // predicate, per item
        Expr::OrderBy { .. } => idx >= 1,           // keys, per item
        Expr::Execute { .. } => idx == 1,           // shipped body
        Expr::Path { start, .. } => {
            // children: [start?][step predicates…]; predicates run per
            // candidate node
            idx >= usize::from(start.is_some())
        }
        _ => false,
    }
}

fn binds_name(e: &Expr, idx: usize, name: &str) -> bool {
    match e {
        // child 0 is the binding value (not in scope), child 1 the body
        Expr::For { var, .. } | Expr::Let { var, .. } => idx == 1 && var == name,
        Expr::Typeswitch { cases, default_var, .. } => {
            // children: input, case bodies…, default
            if idx == 0 {
                false
            } else if idx <= cases.len() {
                cases[idx - 1].var == name
            } else {
                default_var == name
            }
        }
        Expr::Execute { params, .. } => {
            // children: peer, body
            idx == 1 && params.iter().any(|p| p.var == name)
        }
        _ => false,
    }
}

/// Rebuilds `e` with child `idx` replaced.
fn replace_child(e: &Expr, idx: usize, new_child: &Expr) -> Expr {
    let mut i = 0usize;
    map_children_infallible(e, &mut |c| {
        let out = if i == idx { new_child.clone() } else { c.clone() };
        i += 1;
        out
    })
}

/// Suppress an unused-import false positive: `Step`/`OrderSpec` appear only
/// in documentation cross-references.
#[allow(dead_code)]
fn _doc_refs(_: &Step, _: &OrderSpec) {}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xquery::{normalize, parse_query};

    fn norm(q: &str) -> Expr {
        let m = parse_query(q).unwrap();
        normalize(&m).unwrap()
    }

    #[test]
    fn unused_let_is_dropped() {
        let e = norm("let $x := doc(\"d.xml\") return 42");
        let out = let_motion(&e);
        assert_eq!(out.to_string(), "42");
    }

    #[test]
    fn single_use_collapses() {
        let e = norm("let $x := 1 return $x");
        assert_eq!(let_motion(&e).to_string(), "1");
    }

    #[test]
    fn let_sinks_into_single_use_branch() {
        let e = norm(
            "let $c := doc(\"b.xml\") return \
             for $e in $c/child::x return if ($e = 1) then $e else ()",
        );
        let out = let_motion(&e);
        let s = out.to_string();
        // the let moves into the for's sequence, Qn2-style; since $c is
        // used exactly once it collapses into the path start
        assert!(
            s.starts_with("for $e in doc(\"b.xml\")/child::x"),
            "let should sink and collapse: {s}"
        );
    }

    #[test]
    fn q2_normalizes_toward_qn2() {
        // Qc2 (Table III): all lets at the top
        let e = norm(
            "(let $s := doc(\"xrpc://A/students.xml\")/child::people/child::person
              return let $c := doc(\"xrpc://B/course42.xml\")
              return let $t := (for $x in $s return
                         if ($x/child::tutor = $s/child::name) then $x else ())
              return for $e in $c/child::enroll/child::exam return
                  if ($e/attribute::id = $t/child::id) then $e else ())/child::grade",
        );
        let out = let_motion(&e);
        let s = out.to_string();
        // doc(B) must now be parse-related to its /enroll/exam use (inside
        // the for's sequence), not referenced from afar
        assert!(
            s.contains("for $e in doc(\"xrpc://B/course42.xml\")/child::enroll/child::exam"),
            "Qn2 shape expected: {s}"
        );
        // $s is used twice → the binding stays (inside the $t value)
        assert!(s.contains("let $s :="), "{s}");
    }

    #[test]
    fn multi_use_let_stays_at_lca() {
        let e = norm("let $x := doc(\"d.xml\") return ($x/child::a, $x/child::b)");
        let out = let_motion(&e);
        let s = out.to_string();
        assert!(s.starts_with("let $x :="), "uses split across sequence: {s}");
    }

    #[test]
    fn sinking_respects_shadowing() {
        // $y is free in $x's value; the for rebinds $y, so $x must not sink
        // into the loop body
        let e = norm(
            "let $y := 1 return let $x := ($y + 1) return \
             for $y in (10, 20) return ($y + $x)",
        );
        let out = let_motion(&e);
        let s = out.to_string();
        assert!(
            s.contains("let $x := 1 + 1 return for $y"),
            "x stays outside the shadowing binder (and $y := 1 collapsed into it): {s}"
        );
    }

    #[test]
    fn shadowed_bindings_keep_meaning() {
        // bottom-up collapsing dissolves the shadowing let first; the final
        // expression must still compute (100, 2)
        let e = norm(
            "let $y := 1 return let $x := ($y + 1) return let $y := 100 return ($y, $x)",
        );
        let out = let_motion(&e);
        let mut store = xqd_xml::Store::new();
        let module = xqd_xquery::QueryModule { functions: vec![], body: out };
        let r = xqd_xquery::eval_query(&mut store, &module).unwrap();
        assert_eq!(format!("{r:?}"), "[Atom(Int(100)), Atom(Int(2))]");
    }

    #[test]
    fn execute_param_uses_block_sinking() {
        let e = norm(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { $q/child::id }",
        );
        let out = let_motion(&e);
        assert!(out.to_string().starts_with("let $t :="), "{out}");
    }
}
