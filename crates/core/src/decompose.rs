//! End-to-end query decomposition.
//!
//! Pipeline (Sections III–VI):
//!
//! 1. normalize to a single XCore expression (function inlining + filter
//!    lowering, `xqd-xquery::normalize`);
//! 2. **let-motion** — move bindings down to the LCA of their uses (Qc2 →
//!    Qn2);
//! 3. build the d-graph, compute `I(G)` under the strategy's insertion
//!    conditions and select the interesting points `I'(G)`;
//! 4. **insert XRPCExpr** vertices with their parameter bindings;
//! 5. **distributed code motion** — parameter-only subexpressions move to
//!    the caller side;
//! 6. for pass-by-projection, run the relative path analysis and attach
//!    [`ExecProjection`]s to every call.
//!
//! Data shipping performs none of this: the query evaluates locally and
//! `fn:doc("xrpc://…")` fetches whole documents (which `xqd-xrpc`'s
//! resolver implements, byte-accounted).

use xqd_xquery::ast::{ExecProjection, Expr, QueryModule, XrpcParam};
use xqd_xquery::EvalError;

use crate::codemotion::distributed_code_motion;
use crate::conditions::{interesting_points, valid_dpoints, Reachability, Semantics};
use crate::dgraph::{build_dgraph, to_expr};
use crate::insertion::insert_xrpc;
use crate::letmotion::let_motion;
use crate::paths::attach_projections;
use crate::semijoin::SemijoinEdge;
use crate::uris::analyze_uris;

/// The four execution strategies of the evaluation (Section VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No decomposition: remote documents are fetched whole.
    DataShipping,
    ByValue,
    ByFragment,
    ByProjection,
}

impl Strategy {
    pub fn semantics(self) -> Option<Semantics> {
        match self {
            Strategy::DataShipping => None,
            Strategy::ByValue => Some(Semantics::ByValue),
            Strategy::ByFragment => Some(Semantics::ByFragment),
            Strategy::ByProjection => Some(Semantics::ByProjection),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Strategy::DataShipping => "data-shipping",
            Strategy::ByValue => "pass-by-value",
            Strategy::ByFragment => "pass-by-fragment",
            Strategy::ByProjection => "pass-by-projection",
        }
    }

    /// All four, in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::DataShipping,
        Strategy::ByValue,
        Strategy::ByFragment,
        Strategy::ByProjection,
    ];
}

/// Explain-level description of one generated remote call.
#[derive(Debug, Clone)]
pub struct RemoteCall {
    pub peer: String,
    pub params: Vec<XrpcParam>,
    pub body: String,
    pub projection: Option<ExecProjection>,
    /// Hosts able to answer this call, in seeded preference order (empty
    /// until [`Decomposition::resolve_replicas`] runs, or when the catalog
    /// names no stand-in for `peer`).
    pub replicas: Vec<String>,
    /// Indices (into [`Decomposition::calls`]) of the calls whose results
    /// feed this call's inputs — its peer expression or shipped parameter
    /// values. Empty = the call can fire in the first scatter round.
    pub depends_on: Vec<usize>,
}

/// A decomposed query plus its plan description.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The executable rewritten query.
    pub rewritten: Expr,
    /// The normalized (pre-insertion) query, for explain output.
    pub normalized: Expr,
    /// One entry per generated `execute at`.
    pub calls: Vec<RemoteCall>,
    pub strategy: Strategy,
    /// Sizes of the scatter rounds the executor will fan out: each entry is
    /// the number of independent `execute at` calls (to ≥2 distinct peers)
    /// that one round issues concurrently. Empty = fully sequential plan.
    pub scatter_rounds: Vec<usize>,
    /// Cross-peer semi-join edges detected (and rewritten) in this plan:
    /// the producer call now harvests a sorted distinct key column instead
    /// of full nodes. Empty unless [`DecomposeOptions::semijoin`] was on.
    pub semijoins: Vec<SemijoinEdge>,
}

/// Pipeline knobs, primarily for ablation studies; the defaults run the
/// full paper pipeline.
#[derive(Debug, Clone, Copy)]
pub struct DecomposeOptions {
    /// Apply let-motion normalization (Section IV).
    pub let_motion: bool,
    /// Apply distributed code motion (Section IV, Example 4.3).
    pub code_motion: bool,
    /// Apply the join-aware semi-join rewrite ([`crate::semijoin`]): ship
    /// distinct sorted join keys instead of full node sets where the use
    /// analysis proves it sound. Off by default at this layer — the
    /// executor (`xqd-xrpc`) turns it on, so raw `decompose()` output
    /// still matches the paper's plans verbatim.
    pub semijoin: bool,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions { let_motion: true, code_motion: true, semijoin: false }
    }
}

/// Decomposes `module` under `strategy` with the full pipeline.
pub fn decompose(module: &QueryModule, strategy: Strategy) -> Result<Decomposition, EvalError> {
    decompose_with(module, strategy, DecomposeOptions::default())
}

/// Decomposes `module` with explicit pipeline options.
pub fn decompose_with(
    module: &QueryModule,
    strategy: Strategy,
    options: DecomposeOptions,
) -> Result<Decomposition, EvalError> {
    let normalized = xqd_xquery::normalize(module)?;
    let Some(semantics) = strategy.semantics() else {
        return Ok(Decomposition {
            rewritten: normalized.clone(),
            normalized,
            calls: vec![],
            strategy,
            scatter_rounds: vec![],
            semijoins: vec![],
        });
    };

    // Section IV normalization: let-motion
    let moved = if options.let_motion { let_motion(&normalized) } else { normalized };

    // analysis + insertion on the d-graph
    let mut g = build_dgraph(&moved)?;
    let reach = Reachability::compute(&g);
    let uris = analyze_uris(&g);
    let dpoints = valid_dpoints(&g, &reach, &uris, semantics);
    let points = interesting_points(&g, &reach, &uris, &dpoints, semantics);
    for p in &points {
        insert_xrpc(&mut g, p.root, &p.peer);
    }
    let inserted = to_expr(&g);

    // distributed code motion (AST level)
    let mut rewritten =
        if options.code_motion { distributed_code_motion(&inserted) } else { inserted };

    // by-projection: attach relative projection paths
    if semantics == Semantics::ByProjection {
        let mut g2 = build_dgraph(&rewritten)?;
        attach_projections(&mut g2);
        rewritten = to_expr(&g2);
    }

    // join-aware decomposition: producers whose nodes feed only one key
    // column now harvest distinct sorted keys instead
    let rewrites = if options.semijoin {
        let (rw, rewrites) = crate::semijoin::apply(&rewritten);
        rewritten = rw;
        rewrites
    } else {
        vec![]
    };

    let mut calls = collect_calls(&rewritten);
    for (call, deps) in calls.iter_mut().zip(call_dependencies(&rewritten)) {
        call.depends_on = deps;
    }
    let semijoins = resolve_semijoins(&rewritten, rewrites, &calls);
    let scatter_rounds = xqd_xquery::scatter_rounds(&rewritten);
    Ok(Decomposition { rewritten, normalized: moved, calls, strategy, scatter_rounds, semijoins })
}

impl Decomposition {
    /// Resolves every generated call's destination to a **replica set**:
    /// the intersection, over the `doc()` URIs its shipped body opens on
    /// the target peer, of the catalog's host sets — ordered by the seeded
    /// rendezvous policy. Bodies opening no literal URI (parameter-only
    /// calls) fall back to the hosts able to serve the peer entirely.
    ///
    /// This replaces the paper's single-destination assumption: the peer
    /// named by `execute at` becomes merely the *canonical* destination,
    /// and the executor is free to elect any host in the set.
    pub fn resolve_replicas(&mut self, catalog: &crate::replicas::ReplicaCatalog, seed: u64) {
        if catalog.is_empty() || self.calls.is_empty() {
            return;
        }
        let calls = &mut self.calls;
        let mut idx = 0usize;
        self.rewritten.walk(&mut |x| {
            if let Expr::Execute { peer, body, .. } = x {
                let peer_name = match peer.as_ref() {
                    Expr::Literal(a) => a.to_lexical(),
                    other => other.to_string(),
                };
                // intersect host sets over the body's literal doc() URIs
                // that live on the canonical destination
                let mut candidates: Option<Vec<String>> = None;
                body.walk(&mut |b| {
                    let Expr::FunCall { name, args } = b else { return };
                    let bare = name.strip_prefix("fn:").unwrap_or(name);
                    let Some(Expr::Literal(a)) = args.first() else { return };
                    if bare != "doc" {
                        return;
                    }
                    let uri = a.to_lexical();
                    match crate::uris::split_xrpc_uri(&uri) {
                        Some((host, _)) if host == peer_name => {}
                        _ => return,
                    }
                    let hosts = catalog.hosts_for(&uri);
                    candidates = Some(match candidates.take() {
                        None => hosts,
                        Some(prev) => {
                            prev.into_iter().filter(|h| hosts.iter().any(|x| x == h)).collect()
                        }
                    });
                });
                let set =
                    candidates.unwrap_or_else(|| catalog.hosts_serving_peer(&peer_name));
                if let Some(call) = calls.get_mut(idx) {
                    call.replicas = crate::replicas::rendezvous_order(seed, &set);
                }
                idx += 1;
            }
        });
    }
}

fn collect_calls(e: &Expr) -> Vec<RemoteCall> {
    let mut out = Vec::new();
    e.walk(&mut |x| {
        if let Expr::Execute { peer, params, body, projection } = x {
            let peer = match peer.as_ref() {
                Expr::Literal(a) => a.to_lexical(),
                other => other.to_string(),
            };
            out.push(RemoteCall {
                peer,
                params: params.clone(),
                body: body.to_string(),
                projection: projection.as_deref().cloned(),
                replicas: Vec::new(),
                depends_on: Vec::new(),
            });
        }
    });
    out
}

/// Computes, for each `execute at` in `e` (pre-order, matching
/// [`collect_calls`]), the set of earlier calls whose results flow into its
/// inputs — the peer expression or a shipped parameter's outer binding.
/// This is the join/data-flow graph of the distributed plan.
fn call_dependencies(e: &Expr) -> Vec<Vec<usize>> {
    use std::collections::HashMap;

    fn union(mut a: Vec<usize>, b: &[usize]) -> Vec<usize> {
        a.extend_from_slice(b);
        a.sort_unstable();
        a.dedup();
        a
    }

    /// Returns the call indices the *value* of `e` depends on; `env` maps
    /// in-scope variables to the call indices their bindings depend on.
    fn visit(
        e: &Expr,
        env: &mut HashMap<String, Vec<usize>>,
        next: &mut usize,
        out: &mut Vec<Vec<usize>>,
    ) -> Vec<usize> {
        match e {
            Expr::VarRef(v) => env.get(v).cloned().unwrap_or_default(),
            Expr::Literal(_) | Expr::Empty | Expr::ContextItem => vec![],
            Expr::Let { var, value, ret } => {
                let vd = visit(value, env, next, out);
                let saved = env.insert(var.clone(), vd);
                let rd = visit(ret, env, next, out);
                restore(env, var, saved);
                rd
            }
            Expr::For { var, seq, ret } => {
                let sd = visit(seq, env, next, out);
                let saved = env.insert(var.clone(), sd.clone());
                let rd = visit(ret, env, next, out);
                restore(env, var, saved);
                union(sd, &rd)
            }
            Expr::Typeswitch { input, cases, default_var, default } => {
                let id = visit(input, env, next, out);
                let mut acc = id.clone();
                for c in cases {
                    let saved = env.insert(c.var.clone(), id.clone());
                    let bd = visit(&c.body, env, next, out);
                    restore(env, &c.var, saved);
                    acc = union(acc, &bd);
                }
                let saved = env.insert(default_var.clone(), id);
                let dd = visit(default, env, next, out);
                restore(env, default_var, saved);
                union(acc, &dd)
            }
            Expr::Execute { peer, params, body, .. } => {
                // index assignment order (self, then peer, then body)
                // matches the `walk` pre-order that collect_calls uses
                let idx = *next;
                *next += 1;
                out.push(vec![]);
                let mut deps = visit(peer, env, next, out);
                let mut body_env: HashMap<String, Vec<usize>> = HashMap::new();
                for p in params {
                    let pd = env.get(&p.outer).cloned().unwrap_or_default();
                    deps = union(deps, &pd);
                    body_env.insert(p.var.clone(), pd);
                }
                visit(body, &mut body_env, next, out);
                out[idx] = deps;
                // downstream consumers of the result transitively depend
                // on this call (and on everything it waited for)
                union(out[idx].clone(), &[idx])
            }
            other => {
                let mut acc = vec![];
                normalize_children(other, &mut |c| {
                    let d = visit(c, env, next, out);
                    acc = union(std::mem::take(&mut acc), &d);
                });
                acc
            }
        }
    }

    fn restore(env: &mut HashMap<String, Vec<usize>>, var: &str, saved: Option<Vec<usize>>) {
        match saved {
            Some(v) => {
                env.insert(var.to_string(), v);
            }
            None => {
                env.remove(var);
            }
        }
    }

    fn normalize_children(e: &Expr, f: &mut impl FnMut(&Expr)) {
        xqd_xquery::normalize::map_children_infallible(e, &mut |c| {
            f(c);
            c.clone()
        });
    }

    let mut out = Vec::new();
    visit(e, &mut HashMap::new(), &mut 0, &mut out);
    out
}

/// Pairs each applied semi-join rewrite with its producer call (the
/// `execute at` bound to the rewrite's variable) and the first downstream
/// call that consumes the harvested keys.
fn resolve_semijoins(
    rewritten: &Expr,
    rewrites: Vec<crate::semijoin::SemijoinRewrite>,
    calls: &[RemoteCall],
) -> Vec<SemijoinEdge> {
    if rewrites.is_empty() {
        return vec![];
    }
    // producer occurrences in walk order: `let $v := execute at …` puts the
    // very next Execute index on record for $v
    let mut occurrences: Vec<(String, usize)> = Vec::new();
    let mut idx = 0usize;
    let mut pending: Option<String> = None;
    rewritten.walk(&mut |x| match x {
        Expr::Let { var, value, .. } if matches!(value.as_ref(), Expr::Execute { .. }) => {
            pending = Some(var.clone());
        }
        Expr::Execute { .. } => {
            if let Some(v) = pending.take() {
                occurrences.push((v, idx));
            }
            idx += 1;
        }
        _ => {}
    });
    let mut edges = Vec::new();
    for rw in rewrites {
        let Some(pos) = occurrences.iter().position(|(v, _)| *v == rw.var) else { continue };
        let (_, producer) = occurrences.remove(pos);
        let consumer = calls
            .iter()
            .enumerate()
            .find(|(i, c)| *i != producer && c.depends_on.contains(&producer))
            .map(|(i, _)| i);
        edges.push(SemijoinEdge {
            var: rw.var,
            key_path: rw.key_path,
            producer,
            producer_peer: calls[producer].peer.clone(),
            consumer,
            consumer_peer: consumer.map(|i| calls[i].peer.clone()),
        });
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xquery::parse_query;

    /// Q2 of Table III with xrpc URIs, as the paper decomposes it.
    fn q2() -> QueryModule {
        parse_query(
            r#"(let $s := doc("xrpc://A/students.xml")/people/person,
                    $c := doc("xrpc://B/course42.xml"),
                    $t := $s[tutor = $s/name]
                for $e in $c/enroll/exam
                where $e/@id = $t/id
                return $e)/grade"#,
        )
        .unwrap()
    }

    #[test]
    fn data_shipping_generates_no_calls() {
        let d = decompose(&q2(), Strategy::DataShipping).unwrap();
        assert!(d.calls.is_empty());
    }

    /// Qv2 (Table IV): by-value ships the bare students path to A —
    /// crucially *without* the tutor filter loop (condition iii). Our
    /// analysis additionally ships the B-side `child::enroll/child::exam`
    /// path, which conditions i–iv as printed permit (child axes, single
    /// call, order preserved); the paper's benchmark query uses
    /// `descendant::` axes, where by-value correctly refuses (see
    /// `benchmark_query_by_value_ships_only_person_side`).
    #[test]
    fn q2_by_value_matches_qv2() {
        let d = decompose(&q2(), Strategy::ByValue).unwrap();
        assert_eq!(d.calls.len(), 2, "{:#?}", d.calls);
        let a = d.calls.iter().find(|c| c.peer == "A").expect("call to A");
        assert!(a.params.is_empty());
        assert_eq!(
            a.body,
            "doc(\"xrpc://A/students.xml\")/child::people/child::person",
            "fcn1 of Qv2"
        );
        let b = d.calls.iter().find(|c| c.peer == "B").expect("call to B");
        assert!(b.params.is_empty());
        for c in &d.calls {
            assert!(
                !c.body.contains("for $"),
                "by-value must not ship any loop: {}",
                c.body
            );
        }
    }

    /// The Section VII benchmark query uses descendant axes; by-value then
    /// decomposes only the person-side path, exactly as the paper reports.
    #[test]
    fn benchmark_query_by_value_ships_only_person_side() {
        let m = parse_query(
            r#"(let $t := (let $s := doc("xrpc://peer1/xmk.xml")
                            /child::site/child::people/child::person
                          return for $x in $s return
                            if ($x/descendant::age < 40) then $x else ())
                return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
                                  return $c/descendant::open_auction)
                return if ($e/child::seller/attribute::person = $t/attribute::id)
                       then $e/child::annotation else ())/child::author"#,
        )
        .unwrap();
        let d = decompose(&m, Strategy::ByValue).unwrap();
        assert_eq!(d.calls.len(), 1, "{:#?}", d.calls);
        assert_eq!(d.calls[0].peer, "peer1");
        assert!(d.calls[0].body.contains("person"), "{}", d.calls[0].body);
        // by-fragment decomposes both sides (the distributed semijoin)
        let d2 = decompose(&m, Strategy::ByFragment).unwrap();
        assert_eq!(d2.calls.len(), 2, "{:#?}", d2.calls);
        assert!(d2.calls.iter().any(|c| c.peer == "peer2"));
    }

    /// Qf2 (Table IV): by-fragment ships the filter to A and the exam loop
    /// to B, with $t as a parameter — the distributed semijoin plan.
    #[test]
    fn q2_by_fragment_matches_qf2() {
        let d = decompose(&q2(), Strategy::ByFragment).unwrap();
        assert_eq!(d.calls.len(), 2, "{:#?}", d.calls);
        let a = d.calls.iter().find(|c| c.peer == "A").expect("call to A");
        let b = d.calls.iter().find(|c| c.peer == "B").expect("call to B");
        // A runs the tutor filter loop (fcn1 of Qf2)
        assert!(a.body.contains("tutor"), "{}", a.body);
        assert!(a.body.contains("for $"), "{}", a.body);
        // B runs the exam loop with a parameter derived from $t (fcn2new of
        // Table IV: code motion already replaced $t with $t/child::id)
        assert_eq!(b.params.len(), 1, "{:#?}", b.params);
        assert!(b.body.contains("for $e"), "{}", b.body);
        assert!(
            d.rewritten.to_string().contains(":= data($t/child::id)"),
            "{}",
            d.rewritten
        );
    }

    /// Code motion applies: the B call ships id values, not person nodes.
    #[test]
    fn q2_by_fragment_applies_code_motion() {
        let d = decompose(&q2(), Strategy::ByFragment).unwrap();
        let s = d.rewritten.to_string();
        assert!(s.contains("$cm1v := data($t/child::id)"), "{s}");
        let b = d.calls.iter().find(|c| c.peer == "B").unwrap();
        assert!(b.params.iter().any(|p| p.var.starts_with("cm")), "{:#?}", b.params);
    }

    /// By-projection attaches projection paths to every call.
    #[test]
    fn q2_by_projection_attaches_paths() {
        let d = decompose(&q2(), Strategy::ByProjection).unwrap();
        assert_eq!(d.calls.len(), 2, "{:#?}", d.calls);
        for c in &d.calls {
            assert!(c.projection.is_some(), "call to {} lacks projection", c.peer);
        }
        // the caller applies /grade to the B result: the B call's response
        // projection must say so
        let b = d.calls.iter().find(|c| c.peer == "B").unwrap();
        let proj = b.projection.as_ref().unwrap();
        let returned: Vec<String> =
            proj.result.returned.iter().map(|p| p.to_string()).collect();
        assert!(
            returned.iter().any(|p| p.contains("grade")),
            "response projection should mention grade: {returned:?}"
        );
    }

    /// A query over purely local documents decomposes to itself.
    #[test]
    fn local_query_unchanged() {
        let m = parse_query("doc(\"local.xml\")//x/child::y").unwrap();
        for s in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
            let d = decompose(&m, s).unwrap();
            assert!(d.calls.is_empty(), "{s:?}");
        }
    }

    /// Replica resolution turns each call's single destination into a
    /// seeded-ordered candidate set.
    #[test]
    fn replica_resolution_orders_candidates() {
        use crate::replicas::{rendezvous_order, ReplicaCatalog};
        let mut cat = ReplicaCatalog::new();
        cat.register("xrpc://A/students.xml", "A2");
        cat.register("xrpc://B/course42.xml", "B2");
        let mut d = decompose(&q2(), Strategy::ByFragment).unwrap();
        assert!(d.calls.iter().all(|c| c.replicas.is_empty()), "unresolved plans carry none");
        d.resolve_replicas(&cat, 7);
        let a = d.calls.iter().find(|c| c.peer == "A").unwrap();
        let hosts: Vec<String> = ["A", "A2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(a.replicas, rendezvous_order(7, &hosts));
        let b = d.calls.iter().find(|c| c.peer == "B").unwrap();
        assert_eq!(b.replicas.len(), 2, "{:?}", b.replicas);
        assert!(b.replicas.contains(&"B".to_string()) && b.replicas.contains(&"B2".to_string()));
        // an empty catalog leaves plans untouched
        let mut d2 = decompose(&q2(), Strategy::ByFragment).unwrap();
        d2.resolve_replicas(&ReplicaCatalog::new(), 7);
        assert!(d2.calls.iter().all(|c| c.replicas.is_empty()));
    }

    /// With the semi-join option on, Q2's A-side producer harvests the
    /// distinct sorted id column and the edge names B as the consumer.
    #[test]
    fn q2_semijoin_detects_and_resolves_the_edge() {
        let options = DecomposeOptions { semijoin: true, ..DecomposeOptions::default() };
        let d = decompose_with(&q2(), Strategy::ByFragment, options).unwrap();
        assert_eq!(d.semijoins.len(), 1, "{:#?}", d.semijoins);
        let e = &d.semijoins[0];
        assert_eq!(e.var, "t");
        assert_eq!(e.key_path, "child::id");
        assert_eq!(d.calls[e.producer].peer, "A");
        assert_eq!(e.producer_peer, "A");
        assert_eq!(e.consumer_peer.as_deref(), Some("B"));
        let consumer = e.consumer.unwrap();
        assert!(d.calls[consumer].depends_on.contains(&e.producer), "{:#?}", d.calls);
        // the producer body now returns the key column, not person nodes
        assert!(
            d.calls[e.producer].body.contains("xqd:distinct-keys"),
            "{}",
            d.calls[e.producer].body
        );
        // the caller-side extraction collapses to the harvested keys
        let s = d.rewritten.to_string();
        assert!(s.contains("$cm1v := $t"), "{s}");
        assert!(!s.contains("data($t/child::id)"), "{s}");
    }

    /// Off by default: raw decompose() output matches the paper's plans.
    #[test]
    fn semijoin_is_off_by_default() {
        let d = decompose(&q2(), Strategy::ByFragment).unwrap();
        assert!(d.semijoins.is_empty());
        assert!(!d.rewritten.to_string().contains("distinct-keys"));
    }

    /// The dependency analysis records the B call's dependence on the A
    /// call (via the shipped parameter) even without the semi-join rewrite.
    #[test]
    fn call_dependencies_follow_shipped_parameters() {
        let d = decompose(&q2(), Strategy::ByFragment).unwrap();
        let a = d.calls.iter().position(|c| c.peer == "A").unwrap();
        let b = d.calls.iter().position(|c| c.peer == "B").unwrap();
        assert!(d.calls[a].depends_on.is_empty(), "{:#?}", d.calls[a].depends_on);
        assert_eq!(d.calls[b].depends_on, vec![a]);
    }

    /// The intro's motivating example: predicate pushed to example.org.
    #[test]
    fn intro_example_pushes_predicate() {
        let m = parse_query(
            "for $e in doc(\"employees.xml\")//emp \
             where $e/@dept = doc(\"xrpc://example.org/depts.xml\")//dept/@name \
             return $e",
        )
        .unwrap();
        let d = decompose(&m, Strategy::ByValue).unwrap();
        assert_eq!(d.calls.len(), 1, "{:#?}", d.calls);
        assert_eq!(d.calls[0].peer, "example.org");
        assert!(d.calls[0].body.contains("dept"), "{}", d.calls[0].body);
    }
}
