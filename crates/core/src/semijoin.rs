//! Join-aware decomposition: semi-join key shipping for cross-peer value
//! joins ("XQuery Join Graph Isolation" applied to the XRPC setting).
//!
//! After insertion and distributed code motion, the canonical cross-peer
//! equi-join has the shape
//!
//! ```text
//! let $t := execute at {"A"} { …producer body… }          (* full nodes! *)
//! return … let $cm1v := data($t/child::id)                (* key column  *)
//!          return execute at {"B"} params ($cm1 := $cm1v) { … $e/@id = $cm1 … }
//! ```
//!
//! The producer call returns **entire elements** even though the rest of
//! the query only ever consumes one downward key column out of them. When
//! a conservative use analysis proves that — every use of `$t` is the same
//! predicate-free downward path, consumed existentially (general
//! comparison) or shipped onward as a parameter — the producer body is
//! rewritten to return the **deduplicated, sorted key column** instead:
//!
//! ```text
//! let $t := execute at {"A"} { let $sj1v := (…producer body…)
//!                              return xqd:distinct-keys(data($sj1v/child::id)) }
//! return … let $cm1v := $t
//!          return execute at {"B"} params ($cm1 := $cm1v) { … $e/@id = $cm1 … }
//! ```
//!
//! Soundness: general comparisons are existential, so replacing the key
//! sequence by its distinct value set changes no comparison outcome; the
//! producer's nodes were demonstrably used for nothing else. The sorted
//! key set is also exactly what the wire codec front-codes into a compact
//! `<keyset>` block — the "filter" the consumer peer evaluates the join
//! against. The two-phase scatter (key harvest, then filtered fetch) falls
//! out of the existing round structure: the consumer's parameters depend
//! on the producer's binding, so the executor already sequences them.

use std::collections::HashSet;

use xqd_xml::Axis;
use xqd_xquery::ast::{Expr, Step};
use xqd_xquery::normalize::map_children_infallible;

/// One detected (and applied) semi-join rewrite, before the surrounding
/// decomposition resolves call indices: the producer binding's variable and
/// the key column extracted from it.
#[derive(Debug, Clone)]
pub(crate) struct SemijoinRewrite {
    /// Variable bound to the producer `execute at` (`$t` above).
    pub var: String,
    /// Printed key column (`child::id`).
    pub key_path: String,
}

/// One cross-peer semi-join edge of a decomposed plan, in terms of the
/// plan's [`crate::RemoteCall`] list.
#[derive(Debug, Clone)]
pub struct SemijoinEdge {
    /// Variable bound to the producer call.
    pub var: String,
    /// Key column shipped instead of the producer's nodes (`child::id`).
    pub key_path: String,
    /// Index into [`crate::Decomposition::calls`] of the key-harvest call.
    pub producer: usize,
    pub producer_peer: String,
    /// First call whose inputs depend on the producer — the peer the key
    /// filter is shipped to. `None` when the join closes at the
    /// coordinator (the keys still shrink the producer response).
    pub consumer: Option<usize>,
    pub consumer_peer: Option<String>,
}

/// Applies the semi-join rewrite everywhere it is provably sound.
/// Returns the rewritten expression plus one record per rewritten
/// producer, in rewrite order.
pub(crate) fn apply(e: &Expr) -> (Expr, Vec<SemijoinRewrite>) {
    let mut rewrites = Vec::new();
    let mut counter = 0u32;
    let out = go(e, &mut rewrites, &mut counter);
    (out, rewrites)
}

fn go(e: &Expr, rewrites: &mut Vec<SemijoinRewrite>, counter: &mut u32) -> Expr {
    // bottom-up: inner joins first, then this binding over the result
    let rebuilt = map_children_infallible(e, &mut |c| go(c, rewrites, counter));
    let Expr::Let { var, value, ret } = &rebuilt else { return rebuilt };
    let Expr::Execute { peer, params, body, .. } = value.as_ref() else { return rebuilt };

    let mut scan = Scan::new(var.clone());
    scan.scan(ret);
    let Some(steps) = scan.result() else { return rebuilt };

    // producer body: wrap so only the distinct key column returns
    *counter += 1;
    let sv = format!("sj{counter}v");
    let column = Expr::Path {
        start: Some(Expr::VarRef(sv.clone()).boxed()),
        steps: steps.clone(),
    };
    let extract = Expr::FunCall {
        name: "xqd:distinct-keys".into(),
        args: vec![Expr::FunCall { name: "data".into(), args: vec![column] }],
    };
    let harvest_body = Expr::Let {
        var: sv,
        value: body.clone(),
        ret: extract.boxed(),
    };
    // the original response projection described node results; the harvest
    // returns atoms, which need (and tolerate) no projection
    let harvest = Expr::Execute {
        peer: peer.clone(),
        params: params.clone(),
        body: harvest_body.boxed(),
        projection: None,
    };
    rewrites.push(SemijoinRewrite { var: var.clone(), key_path: print_steps(&steps) });
    Expr::Let {
        var: var.clone(),
        value: harvest.boxed(),
        ret: replace_uses(ret, var, &steps).boxed(),
    }
}

fn print_steps(steps: &[Step]) -> String {
    let mut out = String::new();
    for (i, s) in steps.iter().enumerate() {
        if i > 0 {
            out.push('/');
        }
        out.push_str(s.axis.name());
        out.push_str("::");
        out.push_str(&s.test.to_string());
    }
    out
}

fn is_data(name: &str) -> bool {
    name == "data" || name == "fn:data"
}

fn downward_only(steps: &[Step]) -> bool {
    !steps.is_empty()
        && steps.iter().all(|s| {
            s.predicates.is_empty()
                && matches!(
                    s.axis,
                    Axis::Child
                        | Axis::Attribute
                        | Axis::Descendant
                        | Axis::DescendantOrSelf
                        | Axis::SelfAxis
                )
        })
}

/// Conservative key-use analysis for one producer binding. Succeeds only
/// when every reachable use of the producer variable (or of a variable
/// derived from it) is one of:
///
/// - the key column `$t/steps` — or `data($t/steps)` — as a general
///   comparison operand (existential: dedup + sort cannot flip it);
/// - a `let` binding the key column (or an alias of a derived variable),
///   which makes the bound variable *derived* and subject to these rules;
/// - shipping a derived variable into an `execute at` parameter, whose
///   body-side name is then analyzed under the same rules.
///
/// Everything else — bare node uses, reverse axes, predicates, counting,
/// shadowing of a tracked name — rejects the rewrite. All key-column uses
/// must agree on one path; that column becomes the shipped filter.
struct Scan {
    /// The producer variable in the *current* scope; `None` inside shipped
    /// bodies, where only derived parameter names are tracked.
    producer: Option<String>,
    /// Variables holding (aliases of) the extracted key column.
    keyvars: HashSet<String>,
    steps: Option<Vec<Step>>,
    ok: bool,
}

/// Sanctioned value shapes: the producer's key column (with its steps) or
/// an alias of an already-derived key variable.
enum KeyVal {
    Column(Vec<Step>),
    Alias,
}

impl Scan {
    fn new(producer: String) -> Self {
        Scan { producer: Some(producer), keyvars: HashSet::new(), steps: None, ok: true }
    }

    fn result(self) -> Option<Vec<Step>> {
        match (self.ok, self.steps) {
            (true, Some(steps)) => Some(steps),
            _ => None,
        }
    }

    fn tracked(&self, v: &str) -> bool {
        self.producer.as_deref() == Some(v) || self.keyvars.contains(v)
    }

    fn merge(&mut self, steps: Vec<Step>) {
        match &self.steps {
            None => self.steps = Some(steps),
            Some(prev) if *prev == steps => {}
            Some(_) => self.ok = false, // two different key columns
        }
    }

    /// Classifies `e` as a sanctioned key value, if it is one.
    fn key_value(&self, e: &Expr) -> Option<KeyVal> {
        match e {
            Expr::Path { start: Some(start), steps } => match start.as_ref() {
                Expr::VarRef(v)
                    if self.producer.as_deref() == Some(v) && downward_only(steps) =>
                {
                    Some(KeyVal::Column(steps.clone()))
                }
                _ => None,
            },
            Expr::VarRef(v) if self.keyvars.contains(v) => Some(KeyVal::Alias),
            Expr::FunCall { name, args } if is_data(name) && args.len() == 1 => {
                self.key_value(&args[0])
            }
            _ => None,
        }
    }

    /// A comparison operand: sanctioned key uses are consumed, anything
    /// else is scanned as a general expression.
    fn operand(&mut self, e: &Expr) {
        match self.key_value(e) {
            Some(KeyVal::Column(steps)) => self.merge(steps),
            Some(KeyVal::Alias) => {}
            None => self.scan(e),
        }
    }

    fn scan(&mut self, e: &Expr) {
        if !self.ok {
            return;
        }
        match e {
            Expr::VarRef(v) => {
                if self.tracked(v) {
                    self.ok = false;
                }
            }
            Expr::Literal(_) | Expr::Empty | Expr::ContextItem => {}
            Expr::Comparison { lhs, rhs, .. } => {
                self.operand(lhs);
                self.operand(rhs);
            }
            Expr::Let { var, value, ret } => {
                match self.key_value(value) {
                    Some(kv) => {
                        if let KeyVal::Column(steps) = kv {
                            self.merge(steps);
                        }
                        if self.tracked(var) {
                            // rebinding a tracked name — too confusing
                            self.ok = false;
                            return;
                        }
                        self.keyvars.insert(var.clone());
                    }
                    None => {
                        self.scan(value);
                        if self.tracked(var) {
                            // the binding shadows a tracked name
                            self.ok = false;
                            return;
                        }
                    }
                }
                self.scan(ret);
            }
            Expr::For { var, seq, ret } => {
                self.scan(seq);
                if self.tracked(var) {
                    self.ok = false;
                    return;
                }
                self.scan(ret);
            }
            Expr::Typeswitch { input, cases, default_var, default } => {
                self.scan(input);
                for c in cases {
                    if self.tracked(&c.var) {
                        self.ok = false;
                        return;
                    }
                    self.scan(&c.body);
                }
                if self.tracked(default_var) {
                    self.ok = false;
                    return;
                }
                self.scan(default);
            }
            Expr::Execute { peer, params, body, .. } => {
                self.scan(peer);
                let mut body_keys = HashSet::new();
                for p in params {
                    if self.keyvars.contains(&p.outer) {
                        body_keys.insert(p.var.clone());
                    } else if self.producer.as_deref() == Some(p.outer.as_str()) {
                        // shipping the raw nodes — a node use
                        self.ok = false;
                        return;
                    }
                }
                // the body is a separate scope: only the derived parameter
                // names are visible, under the same rules
                let mut sub = Scan {
                    producer: None,
                    keyvars: body_keys,
                    steps: self.steps.take(),
                    ok: true,
                };
                sub.scan(body);
                self.steps = sub.steps;
                self.ok &= sub.ok;
            }
            other => {
                map_children_infallible(other, &mut |c| {
                    self.scan(c);
                    c.clone()
                });
            }
        }
    }
}

/// Replaces every occurrence of the key column (`$t/steps`, possibly under
/// `data(...)`) by `$t` itself, which now holds the harvested key atoms.
/// Sound as a blanket structural replacement: the scan already rejected
/// any plan where a tracked name is shadowed or the column appears in an
/// unsanctioned context. Shipped bodies are separate scopes and are left
/// untouched.
fn replace_uses(e: &Expr, producer: &str, steps: &[Step]) -> Expr {
    let is_column = |x: &Expr| -> bool {
        matches!(x, Expr::Path { start: Some(s), steps: st }
            if st == steps && matches!(s.as_ref(), Expr::VarRef(v) if v == producer))
    };
    if is_column(e) {
        return Expr::VarRef(producer.to_string());
    }
    if let Expr::FunCall { name, args } = e {
        if is_data(name) && args.len() == 1 && is_column(&args[0]) {
            return Expr::VarRef(producer.to_string());
        }
    }
    if let Expr::Execute { peer, params, body, projection } = e {
        return Expr::Execute {
            peer: replace_uses(peer, producer, steps).boxed(),
            params: params.clone(),
            body: body.clone(),
            projection: projection.clone(),
        };
    }
    map_children_infallible(e, &mut |c| replace_uses(c, producer, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqd_xquery::parse_expr_str;

    fn apply_str(src: &str) -> (String, Vec<SemijoinRewrite>) {
        let e = parse_expr_str(src).unwrap();
        let (out, edges) = apply(&e);
        (out.to_string(), edges)
    }

    #[test]
    fn fragment_shape_harvests_distinct_keys() {
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { for $p in doc(\"xrpc://A/a.xml\")/child::people/child::person \
                 return if ($p/child::tutor = \"x\") then $p else () } \
             return let $cm1v := data($t/child::id) \
             return execute at { \"B\" } params ($cm1 := $cm1v) \
               { for $e in doc(\"xrpc://B/b.xml\")/child::enroll/child::exam \
                 return if ($e/attribute::id = $cm1) then $e else () }",
        );
        assert_eq!(edges.len(), 1, "{s}");
        assert_eq!(edges[0].var, "t");
        assert_eq!(edges[0].key_path, "child::id");
        assert!(s.contains("xqd:distinct-keys(data($sj1v/child::id))"), "{s}");
        assert!(s.contains("let $cm1v := $t"), "{s}");
        assert!(!s.contains("data($t/child::id)"), "{s}");
    }

    #[test]
    fn direct_comparison_use_also_qualifies() {
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { doc(\"xrpc://A/a.xml\")/child::people/child::person } \
             return for $e in doc(\"b.xml\")/child::exam \
             return if ($e/attribute::id = data($t/child::id)) then $e else ()",
        );
        assert_eq!(edges.len(), 1, "{s}");
        assert!(s.contains("xqd:distinct-keys"), "{s}");
        assert!(s.contains("$e/attribute::id = $t"), "{s}");
    }

    #[test]
    fn bare_node_use_rejects_the_rewrite() {
        // $t is returned as nodes — dedup would change the answer
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { doc(\"xrpc://A/a.xml\")/child::p } \
             return ($t, data($t/child::id))",
        );
        assert!(edges.is_empty(), "{s}");
        assert!(!s.contains("distinct-keys"), "{s}");
    }

    #[test]
    fn two_key_columns_reject_the_rewrite() {
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { doc(\"xrpc://A/a.xml\")/child::p } \
             return (data($t/child::id) = 1, data($t/child::name) = \"x\")",
        );
        assert!(edges.is_empty(), "{s}");
    }

    #[test]
    fn counting_keys_rejects_the_rewrite() {
        // count() over the column is not existential — dedup changes it
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { doc(\"xrpc://A/a.xml\")/child::p } \
             return count(data($t/child::id))",
        );
        assert!(edges.is_empty(), "{s}");
    }

    #[test]
    fn predicated_or_upward_columns_reject_the_rewrite() {
        for col in ["$t/parent::x", "$t/child::id[. = 1]"] {
            let (s, edges) = apply_str(&format!(
                "let $t := execute at {{ \"A\" }} params () \
                   {{ doc(\"xrpc://A/a.xml\")/child::p }} \
                 return data({col}) = 1",
            ));
            assert!(edges.is_empty(), "{col}: {s}");
        }
    }

    #[test]
    fn key_alias_shipped_as_parameter_is_tracked_into_the_body() {
        // the body uses the derived parameter as a node set — reject
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { doc(\"xrpc://A/a.xml\")/child::p } \
             return let $k := data($t/child::id) \
             return execute at { \"B\" } params ($q := $k) { $q/child::x }",
        );
        assert!(edges.is_empty(), "{s}");
    }

    #[test]
    fn shadowing_a_tracked_name_rejects_the_rewrite() {
        let (s, edges) = apply_str(
            "let $t := execute at { \"A\" } params () \
               { doc(\"xrpc://A/a.xml\")/child::p } \
             return let $k := data($t/child::id) \
             return for $k in doc(\"b.xml\")/child::e return ($k, 1 = $k)",
        );
        assert!(edges.is_empty(), "{s}");
    }

    #[test]
    fn local_bindings_are_untouched() {
        let (s, edges) =
            apply_str("let $t := doc(\"a.xml\")/child::p return data($t/child::id) = 1");
        assert!(edges.is_empty(), "{s}");
        assert!(!s.contains("distinct-keys"), "{s}");
    }
}
