//! Replica catalog: which peers serve a bit-identical copy of which
//! document.
//!
//! The paper assumes each `doc()` URI is served by exactly one live peer;
//! distributed XML design work (Abiteboul et al., the DXQ network
//! proposal) treats replicated placement and server selection as
//! first-class. This module supplies the placement half: a catalog mapping
//! each **canonical** document URI (`xrpc://primary/doc`) to the set of
//! alternate hosts holding a byte-identical copy, plus a deterministic
//! seeded ordering (rendezvous hashing) over a candidate set so replica
//! *selection* is a pure function of `(seed, host names)` — the property
//! the executor's failover ladder and the chaos suite's replay both build
//! on.
//!
//! Replicas are registered under the primary's canonical URI, never their
//! own: a copy of `xrpc://p/d.xml` living on host `q` is still *the*
//! document `xrpc://p/d.xml`. Decomposed call bodies therefore evaluate
//! unchanged on any replica, and responses stay bit-identical regardless
//! of which host answers (the wire codecs are content-based).

use std::collections::BTreeMap;

use crate::uris::split_xrpc_uri;

/// Document → replica-host placement map.
#[derive(Debug, Clone, Default)]
pub struct ReplicaCatalog {
    /// Canonical `xrpc://primary/doc` URI → alternate hosts (registration
    /// order, primary excluded — it is implied by the URI).
    entries: BTreeMap<String, Vec<String>>,
    /// Peer name → transport address (`host:port`). Empty in simulated
    /// federations, where the name *is* the address; the socket transport
    /// dials through this book.
    addresses: BTreeMap<String, String>,
}

impl ReplicaCatalog {
    pub fn new() -> Self {
        ReplicaCatalog::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Records `host` as serving a bit-identical copy of the canonical
    /// `xrpc://primary/doc` URI. Registering the primary itself or a
    /// duplicate host is a no-op.
    pub fn register(&mut self, canonical_uri: &str, host: &str) {
        if let Some((primary, _)) = split_xrpc_uri(canonical_uri) {
            if primary == host {
                return;
            }
        }
        let hosts = self.entries.entry(canonical_uri.to_string()).or_default();
        if !hosts.iter().any(|h| h == host) {
            hosts.push(host.to_string());
        }
    }

    /// Every host serving `uri`: the primary (from the URI) first, then the
    /// registered replicas in registration order.
    pub fn hosts_for(&self, uri: &str) -> Vec<String> {
        let mut out = Vec::new();
        if let Some((primary, _)) = split_xrpc_uri(uri) {
            out.push(primary.to_string());
        }
        if let Some(replicas) = self.entries.get(uri) {
            out.extend(replicas.iter().cloned());
        }
        out
    }

    /// The registered replicas of `uri` (primary excluded).
    pub fn replicas_of(&self, uri: &str) -> &[String] {
        self.entries.get(uri).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Reverse lookup for plain-name resolution on a replica: the canonical
    /// URI of the document named `name` that `host` serves a copy of, if
    /// exactly determined. Iteration over the `BTreeMap` keeps the answer
    /// deterministic when several primaries publish the same name.
    pub fn canonical_on(&self, host: &str, name: &str) -> Option<String> {
        self.entries.iter().find_map(|(uri, hosts)| {
            let (_, doc) = split_xrpc_uri(uri)?;
            (doc == name && hosts.iter().any(|h| h == host)).then(|| uri.clone())
        })
    }

    /// The hosts able to stand in for `primary` entirely: the intersection,
    /// over every canonical URI primary serves, of that URI's replica
    /// hosts — with `primary` itself first. A host missing even one of the
    /// primary's documents cannot be a failover target for shipped call
    /// bodies (they may open any of them).
    pub fn hosts_serving_peer(&self, primary: &str) -> Vec<String> {
        let mut common: Option<Vec<String>> = None;
        for (uri, hosts) in &self.entries {
            let Some((host, _)) = split_xrpc_uri(uri) else { continue };
            if host != primary {
                continue;
            }
            common = Some(match common.take() {
                None => hosts.clone(),
                Some(prev) => prev.into_iter().filter(|h| hosts.iter().any(|x| x == h)).collect(),
            });
        }
        let mut out = vec![primary.to_string()];
        out.extend(common.unwrap_or_default());
        out
    }

    /// Records the transport address a peer daemon answers on. Placement
    /// (which host serves which document) and addressing (where that host
    /// listens) live in the same catalog so a federation is described by
    /// one structure.
    pub fn set_address(&mut self, peer: &str, addr: &str) {
        self.addresses.insert(peer.to_string(), addr.to_string());
    }

    /// The transport address registered for `peer`, if any.
    pub fn address_of(&self, peer: &str) -> Option<&str> {
        self.addresses.get(peer).map(String::as_str)
    }

    /// Every peer with a registered transport address, in name order.
    pub fn addressed_peers(&self) -> impl Iterator<Item = (&str, &str)> {
        self.addresses.iter().map(|(p, a)| (p.as_str(), a.as_str()))
    }
}

/// Rendezvous score of `host` under `seed`/`salt`: FNV-1a over the name,
/// SplitMix-style mixed — the same construction the fault planner uses for
/// its per-attempt streams, so selection is seeded, deterministic, and
/// uncorrelated between nearby seeds.
pub fn mix_score(seed: u64, name: &str, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(h)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeded preference order over a candidate host set
/// (rendezvous hashing: highest score first, name as tie-break). With a
/// fixed seed this yields one global preference order, so every call —
/// and every replay — elects the same host while it stays healthy.
pub fn rendezvous_order(seed: u64, hosts: &[String]) -> Vec<String> {
    let mut out: Vec<String> = hosts.to_vec();
    out.sort_by(|a, b| {
        mix_score(seed, b, 0).cmp(&mix_score(seed, a, 0)).then_with(|| a.cmp(b))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ReplicaCatalog {
        let mut c = ReplicaCatalog::new();
        c.register("xrpc://p/d.xml", "q");
        c.register("xrpc://p/d.xml", "r");
        c.register("xrpc://p/e.xml", "q");
        c.register("xrpc://a/da.xml", "b");
        c
    }

    #[test]
    fn hosts_include_primary_first() {
        let c = catalog();
        assert_eq!(c.hosts_for("xrpc://p/d.xml"), ["p", "q", "r"]);
        assert_eq!(c.hosts_for("xrpc://p/e.xml"), ["p", "q"]);
        // unreplicated documents are served by their primary alone
        assert_eq!(c.hosts_for("xrpc://z/solo.xml"), ["z"]);
        assert!(c.replicas_of("xrpc://z/solo.xml").is_empty());
    }

    #[test]
    fn registering_primary_or_duplicate_is_noop() {
        let mut c = catalog();
        c.register("xrpc://p/d.xml", "p");
        c.register("xrpc://p/d.xml", "q");
        assert_eq!(c.hosts_for("xrpc://p/d.xml"), ["p", "q", "r"]);
    }

    #[test]
    fn peer_serving_set_is_an_intersection() {
        let c = catalog();
        // q holds both of p's documents, r only one: only q can stand in
        assert_eq!(c.hosts_serving_peer("p"), ["p", "q"]);
        assert_eq!(c.hosts_serving_peer("a"), ["a", "b"]);
        // a peer with no catalog entries serves itself
        assert_eq!(c.hosts_serving_peer("z"), ["z"]);
    }

    #[test]
    fn canonical_lookup_by_replica_host() {
        let c = catalog();
        assert_eq!(c.canonical_on("q", "d.xml"), Some("xrpc://p/d.xml".into()));
        assert_eq!(c.canonical_on("b", "da.xml"), Some("xrpc://a/da.xml".into()));
        assert_eq!(c.canonical_on("q", "missing.xml"), None);
        assert_eq!(c.canonical_on("z", "d.xml"), None);
    }

    #[test]
    fn address_book_round_trips() {
        let mut c = catalog();
        c.set_address("p", "127.0.0.1:7001");
        assert_eq!(c.address_of("p"), Some("127.0.0.1:7001"));
        assert_eq!(c.address_of("q"), None);
        assert_eq!(c.addressed_peers().collect::<Vec<_>>(), [("p", "127.0.0.1:7001")]);
    }

    #[test]
    fn rendezvous_order_is_seeded_and_total() {
        let hosts: Vec<String> = ["p", "q", "r"].iter().map(|s| s.to_string()).collect();
        let o1 = rendezvous_order(7, &hosts);
        assert_eq!(o1, rendezvous_order(7, &hosts), "same seed, same order");
        assert_eq!(o1.len(), 3);
        // some seed produces a different election
        let diverges = (0..64).any(|s| rendezvous_order(s, &hosts) != o1);
        assert!(diverges, "order must depend on the seed");
        // candidate order in the input does not matter
        let shuffled: Vec<String> = ["r", "p", "q"].iter().map(|s| s.to_string()).collect();
        assert_eq!(rendezvous_order(7, &shuffled), o1);
    }
}
