//! Decomposition insertion conditions (Sections IV–VI).
//!
//! A vertex `rs` is a **valid decomposition point** (d-point) if shipping
//! the subgraph `Gs` rooted at `rs` to a remote peer preserves query
//! semantics under the chosen message-passing strategy:
//!
//! * **pass-by-value** — conditions i–iv as printed in Section IV;
//! * **pass-by-fragment** — conditions ii–iii apply only when
//!   `hasMatchingDoc(rs)` holds, and condition iii's "mixing" rule set
//!   shrinks to `{ExprSeq, NodeSetExpr}` (Bulk RPC absorbs `ForExpr`,
//!   fragment messages preserve order and ancestry, Section V);
//! * **pass-by-projection** — additionally drops conditions i and iv
//!   (reverse/horizontal axes and `root()/id()/idref()` are served by
//!   projected fragments, Section VI).
//!
//! `useResult(n, rs)` is *proper* dependency (`n ≠ rs`): an expression that
//! consumes the shipped result. `useParam(n, rs)` means `n` lies inside the
//! shipped subgraph and reaches (via a varref chain) a binding outside it —
//! i.e. `n` operates on a shipped parameter.

use crate::dgraph::{DGraph, Rule, VertexId};
use crate::uris::UriAnalysis;

/// The three distribution strategies with per-peer execution
/// (data shipping never decomposes, so it has no condition set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    ByValue,
    ByFragment,
    ByProjection,
}

/// Simple growable bitset; kept local to avoid a dependency.
#[derive(Clone)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub fn new(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Any bit set in `self` that is not set in `mask`?
    pub fn any_outside(&self, mask: &BitSet) -> bool {
        self.words.iter().zip(&mask.words).any(|(a, b)| a & !b != 0)
    }

    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| (bits & (1 << b) != 0).then_some(w * 64 + b))
        })
    }
}

/// Precomputed reachability (the `⊑` relation) and rule classifications.
pub struct Reachability {
    /// `reach[v]` = vertices reachable from `v` via parse + varref edges
    /// (reflexive).
    reach: Vec<BitSet>,
    n: usize,
}

impl Reachability {
    pub fn compute(g: &DGraph) -> Self {
        let n = g.len();
        let mut reach: Vec<Option<BitSet>> = vec![None; n];
        fn dfs(g: &DGraph, v: VertexId, reach: &mut Vec<Option<BitSet>>, visiting: &mut Vec<bool>, n: usize) -> BitSet {
            if let Some(r) = &reach[v.0 as usize] {
                return r.clone();
            }
            if visiting[v.0 as usize] {
                let mut only_self = BitSet::new(n);
                only_self.insert(v.0 as usize);
                return only_self;
            }
            visiting[v.0 as usize] = true;
            let mut set = BitSet::new(n);
            set.insert(v.0 as usize);
            let vert = g.vertex(v).clone();
            for c in vert.children {
                let sub = dfs(g, c, reach, visiting, n);
                set.union_with(&sub);
            }
            if let Some(t) = vert.varref {
                let sub = dfs(g, t, reach, visiting, n);
                set.union_with(&sub);
            }
            visiting[v.0 as usize] = false;
            reach[v.0 as usize] = Some(set.clone());
            set
        }
        let mut visiting = vec![false; n];
        for v in g.ids() {
            dfs(g, v, &mut reach, &mut visiting, n);
        }
        Reachability { reach: reach.into_iter().map(|r| r.expect("computed")).collect(), n }
    }

    /// `x ⊑ y` (reflexive): y reachable from x.
    pub fn reaches(&self, x: VertexId, y: VertexId) -> bool {
        self.reach[x.0 as usize].contains(y.0 as usize)
    }

    /// Membership bitset of the parse subgraph rooted at `rs`.
    pub fn subgraph_mask(&self, g: &DGraph, rs: VertexId) -> BitSet {
        let mut mask = BitSet::new(self.n);
        for v in g.subgraph(rs) {
            mask.insert(v.0 as usize);
        }
        mask
    }
}

/// Walks from a `ContextItem` vertex up to the nearest construct that binds
/// the context item (an axis-step predicate, a filter predicate, or an
/// order-by key) and checks whether that binder lies within `subgraph(rs)`.
fn context_binder_inside(g: &DGraph, rs: VertexId, ctx: VertexId) -> bool {
    let mut child = ctx;
    let mut cur = g.vertex(ctx).parent;
    while let Some(p) = cur {
        let binds = match &g.vertex(p).rule {
            // children: [input, predicates…]
            Rule::AxisStep { .. } => g.vertex(p).children.first() != Some(&child),
            // children: [input, predicate]
            Rule::Filter => g.vertex(p).children.get(1) == Some(&child),
            // children: [input, keys…]
            Rule::OrderExpr(_) => g.vertex(p).children.first() != Some(&child),
            _ => false,
        };
        if binds {
            // bound at p: fine iff p is inside the shipped subgraph
            return g.parse_reaches(rs, p);
        }
        if p == rs {
            // reached the subgraph root without a binder: free context item
            return false;
        }
        child = p;
        cur = g.vertex(p).parent;
    }
    false
}

fn is_rev_or_hor_step(rule: &Rule) -> bool {
    matches!(rule, Rule::AxisStep { axis, .. } if axis.is_reverse() || axis.is_horizontal())
}

fn is_axis_step(rule: &Rule) -> bool {
    matches!(rule, Rule::AxisStep { .. })
}

fn is_node_cmp_or_setop(rule: &Rule) -> bool {
    matches!(rule, Rule::NodeCmp(_) | Rule::NodeSetExpr(_))
}

fn is_restricted_funcall(rule: &Rule) -> bool {
    matches!(rule, Rule::FunCall(n)
        if matches!(n.strip_prefix("fn:").unwrap_or(n), "root" | "id" | "idref"))
}

/// Is this rule in condition iii's "mixing" set `M` for the strategy?
fn in_mixing_set(rule: &Rule, semantics: Semantics) -> bool {
    match semantics {
        Semantics::ByValue => match rule {
            Rule::ForExpr | Rule::OrderExpr(_) | Rule::ExprSeq | Rule::NodeSetExpr(_) => true,
            // overlapping axes: everything not in the non-overlapping list
            Rule::AxisStep { axis, .. } => !axis.is_non_overlapping(),
            _ => false,
        },
        // Bulk RPC handles ForExpr; fragment messages preserve order and
        // ancestor/descendant relations, so OrderExpr and overlapping axes
        // are fine. Only genuinely mixed-call sequences remain.
        Semantics::ByFragment | Semantics::ByProjection => {
            matches!(rule, Rule::ExprSeq | Rule::NodeSetExpr(_))
        }
    }
}

/// The full d-point analysis for one query graph.
pub struct DPointAnalysis {
    /// `valid[v]` ⇔ `v ∈ I(G)`.
    pub valid: Vec<bool>,
}

/// Computes `I(G)` — the set of valid decomposition points — under the
/// given semantics.
pub fn valid_dpoints(
    g: &DGraph,
    reach: &Reachability,
    uris: &UriAnalysis,
    semantics: Semantics,
) -> DPointAnalysis {
    let n = g.len();
    let mut valid = vec![false; n];

    // candidate pre-filter: structural vertices that can head a shipped
    // function body
    for rs in g.ids() {
        let rule = &g.vertex(rs).rule;
        if matches!(
            rule,
            Rule::Var(_) | Rule::XRPCParam { .. } | Rule::XRPCExpr { .. } | Rule::Root
        ) {
            continue;
        }
        valid[rs.0 as usize] = is_valid_dpoint(g, reach, uris, semantics, rs);
    }
    DPointAnalysis { valid }
}

/// Checks conditions i–iv for a single candidate `rs`.
pub fn is_valid_dpoint(
    g: &DGraph,
    reach: &Reachability,
    uris: &UriAnalysis,
    semantics: Semantics,
    rs: VertexId,
) -> bool {
    let mask = reach.subgraph_mask(g, rs);
    let matching_doc = uris.has_matching_doc(rs);

    // XRPCExpr insertion parameterizes varref edges only: a context item
    // whose binder (the predicate/order-key position that sets it) lies
    // outside the subgraph cannot be shipped
    for v in g.subgraph(rs) {
        if matches!(g.vertex(v).rule, Rule::ContextItem)
            && !context_binder_inside(g, rs, v)
        {
            return false;
        }
    }

    // per-n helpers
    let use_result = |n: VertexId| n != rs && reach.reaches(n, rs);
    let use_param = |n: VertexId| {
        mask.contains(n.0 as usize)
            && reach.reach[n.0 as usize].any_outside(&mask)
    };

    for n in g.ids() {
        let rule = &g.vertex(n).rule;

        // Condition i: reverse/horizontal axis steps on shipped nodes.
        // Lifted entirely by pass-by-projection.
        if semantics != Semantics::ByProjection
            && is_rev_or_hor_step(rule)
            && (use_result(n) || use_param(n))
        {
            return false;
        }

        // Condition ii: node identity / order comparisons and node set
        // operations on shipped nodes. By-fragment and by-projection only
        // prohibit this when the subexpression can mix shreddings of the
        // same document.
        if is_node_cmp_or_setop(rule) && (use_result(n) || use_param(n)) {
            match semantics {
                Semantics::ByValue => return false,
                Semantics::ByFragment | Semantics::ByProjection => {
                    if matching_doc {
                        return false;
                    }
                }
            }
        }

        // Condition iii: downward axis steps over possibly mixed / unordered
        // / overlapping sequences.
        if is_axis_step(rule) {
            let guarded = match semantics {
                Semantics::ByValue => true,
                Semantics::ByFragment | Semantics::ByProjection => matching_doc,
            };
            if guarded {
                // disjunct A: a step outside uses the shipped result, and the
                // shipped expression may produce a mixing sequence
                if use_result(n) {
                    let mixes = reach.reach[rs.0 as usize]
                        .iter_ones()
                        .any(|m| in_mixing_set(&g.vertex(VertexId(m as u32)).rule, semantics));
                    if mixes {
                        return false;
                    }
                }
                // disjunct B: a step inside operates on a shipped parameter
                // whose value may be a mixing sequence
                if mask.contains(n.0 as usize) {
                    let escapes_to_mixer = reach.reach[n.0 as usize].iter_ones().any(|v| {
                        !mask.contains(v)
                            && reach.reach[v]
                                .iter_ones()
                                .any(|m| in_mixing_set(&g.vertex(VertexId(m as u32)).rule, semantics))
                    });
                    if escapes_to_mixer {
                        return false;
                    }
                }
            }
        }

        // Condition iv: root()/id()/idref() on shipped nodes. Lifted by
        // pass-by-projection.
        if semantics != Semantics::ByProjection
            && is_restricted_funcall(rule)
            && (use_result(n) || use_param(n))
        {
            return false;
        }
    }
    true
}

/// Does the candidate body compute the full node set of a document —
/// `doc(…)/descendant-or-self::node()` with nothing narrowing it?
fn returns_whole_document(g: &DGraph, r: VertexId) -> bool {
    let v = g.vertex(r);
    match &v.rule {
        Rule::AxisStep { axis, test } => {
            matches!(axis, xqd_xml::Axis::DescendantOrSelf | xqd_xml::Axis::Descendant)
                && matches!(test, xqd_xquery::ast::NameTest::AnyKind)
                && v.children.len() == 1 // no predicates
                && matches!(&g.vertex(v.children[0]).rule,
                    Rule::FunCall(n) if n.strip_prefix("fn:").unwrap_or(n) == "doc")
        }
        _ => false,
    }
}

/// Is `v` inside the body of an already-present `XRPCExpr` (a user-written
/// `execute at`)? Decomposing there is the remote peer's own job — and a
/// peer cannot call itself while serving the outer call.
fn inside_execute(g: &DGraph, v: VertexId) -> bool {
    let mut cur = g.vertex(v).parent;
    while let Some(p) = cur {
        if matches!(g.vertex(p).rule, Rule::XRPCExpr { .. }) {
            return true;
        }
        cur = g.vertex(p).parent;
    }
    false
}

/// One chosen insertion: ship `subgraph(root)` to `peer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertionPoint {
    pub root: VertexId,
    pub peer: String,
}

/// Computes the **interesting decomposition points** `I'(G)`: per URI
/// equivalence class, the highest valid vertices whose subgraph (a) opens at
/// least one document, all on a single `xrpc://` host, and (b) performs at
/// least one XPath step on it (Section IV).
///
/// Var vertices are transparent, per the paper's footnote ("if the root
/// node happens to be a Var vertex, we consider its value expression
/// instead"). The query root itself is never selected — the main expression
/// already executes at the query originator.
pub fn interesting_points(
    g: &DGraph,
    reach: &Reachability,
    uris: &UriAnalysis,
    dpoints: &DPointAnalysis,
    _semantics: Semantics,
) -> Vec<InsertionPoint> {
    let mut out: Vec<InsertionPoint> = Vec::new();
    let classes = uris.equivalence_classes(g);
    for (deps, members) in classes {
        // restriction: all documents on a single remote host
        let Some(host) = crate::uris::single_xrpc_host(&deps) else {
            continue;
        };
        // valid members, Var vertices replaced by their value expressions
        let mut candidates: Vec<VertexId> = Vec::new();
        for &m in &members {
            let v = match &g.vertex(m).rule {
                Rule::Var(_) => g.vertex(m).children.first().copied(),
                _ => Some(m),
            };
            let Some(v) = v else { continue };
            if v != g.root && dpoints.valid[v.0 as usize] && !inside_execute(g, v) {
                candidates.push(v);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        // keep only the highest (no other candidate is a proper parse
        // ancestor)
        let mut roots: Vec<VertexId> = Vec::new();
        'cand: for &c in &candidates {
            for &other in &candidates {
                if other != c && g.parse_reaches(other, c) {
                    continue 'cand;
                }
            }
            roots.push(c);
        }
        for r in roots {
            // restriction (c): at least one axis step inside the subgraph
            let has_step =
                g.subgraph(r).iter().any(|&v| is_axis_step(&g.vertex(v).rule));
            if !has_step {
                continue;
            }
            // same rationale as restriction (b): a body whose result is the
            // whole document (a bare `doc(…)/descendant-or-self::node()`,
            // the `//` prefix split off a larger path) demands shipping
            // everything — remote execution gains nothing
            if returns_whole_document(g, r) {
                continue;
            }
            let _ = reach;
            out.push(InsertionPoint { root: r, peer: host.clone() });
        }
    }
    // a point nested inside another point shipped to the same peer would
    // make that peer call itself while serving the outer request — the
    // outer call already covers it (nested points for *different* peers are
    // kept: multi-hop distribution)
    let nested: Vec<VertexId> = out
        .iter()
        .filter(|p| {
            out.iter().any(|q| {
                q.root != p.root && q.peer == p.peer && g.parse_reaches(q.root, p.root)
            })
        })
        .map(|p| p.root)
        .collect();
    out.retain(|p| !nested.contains(&p.root));
    // deterministic order: by vertex id
    out.sort_by_key(|p| p.root);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgraph::build_dgraph;
    use crate::uris::analyze_uris;
    use xqd_xquery::{normalize, parse_query};

    struct Ctx {
        g: DGraph,
        reach: Reachability,
        uris: UriAnalysis,
    }

    fn ctx(q: &str) -> Ctx {
        let m = parse_query(q).unwrap();
        let e = normalize(&m).unwrap();
        let g = build_dgraph(&e).unwrap();
        let reach = Reachability::compute(&g);
        let uris = analyze_uris(&g);
        Ctx { g, reach, uris }
    }

    fn find(g: &DGraph, pred: impl Fn(&Rule) -> bool) -> VertexId {
        g.ids().find(|&id| pred(&g.vertex(id).rule)).expect("vertex not found")
    }

    /// Problem 1: a parent step on the result of a shipped expression makes
    /// the expression an invalid by-value d-point.
    #[test]
    fn reverse_step_on_result_blocks_by_value() {
        let c = ctx(
            "let $bc := doc(\"xrpc://A/d.xml\")/child::a/child::b \
             return $bc/parent::a",
        );
        // the shipped candidate: the /b step (value of $bc)
        let bstep = find(&c.g, |r| {
            matches!(r, Rule::AxisStep { test: xqd_xquery::ast::NameTest::Name(n), .. } if n == "b")
        });
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByValue, bstep));
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByFragment, bstep));
        // pass-by-projection ships the needed ancestors: valid
        assert!(is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByProjection, bstep));
    }

    /// A reverse step *inside* the shipped subgraph (applied to local data
    /// on the remote peer) is fine under every semantics.
    #[test]
    fn reverse_step_inside_subgraph_is_fine() {
        let c = ctx("doc(\"xrpc://A/d.xml\")/child::a/child::b/parent::a");
        assert!(is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByValue, c.g.root));
    }

    /// Problem 2: node identity comparison on shipped results.
    #[test]
    fn node_comparison_on_result_blocks_by_value() {
        let c = ctx(
            "let $x := doc(\"xrpc://A/d.xml\")/child::a \
             return $x is doc(\"xrpc://B/e.xml\")/child::a",
        );
        let astep = find(&c.g, |r| {
            matches!(r, Rule::AxisStep { .. })
        });
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByValue, astep));
        // different documents: fragment semantics preserves identity
        assert!(is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByFragment, astep));
    }

    /// Problem 4: downward steps over results of a for-loop (mixed calls)
    /// block by-value but not by-fragment (Bulk RPC + fragments).
    #[test]
    fn step_over_for_loop_result_blocks_by_value_only() {
        let c = ctx(
            "(for $x in doc(\"xrpc://A/d.xml\")/child::p return $x/child::q)/child::r",
        );
        // candidate: the for-loop
        let for_v = find(&c.g, |r| matches!(r, Rule::ForExpr));
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByValue, for_v));
        assert!(is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByFragment, for_v));
    }

    /// By-fragment still refuses when the same document is opened twice
    /// (hasMatchingDoc): the /child::r step would mix two shreddings.
    #[test]
    fn matching_doc_blocks_fragment_too() {
        let c = ctx(
            "((doc(\"xrpc://A/d.xml\")/child::p, doc(\"xrpc://A/d.xml\")/child::q))/child::r",
        );
        let seq = find(&c.g, |r| matches!(r, Rule::ExprSeq));
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByValue, seq));
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByFragment, seq));
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByProjection, seq));
    }

    /// Condition iv: fn:root() on a shipped result blocks by-value and
    /// by-fragment, but by-projection ships the needed context.
    #[test]
    fn root_on_result_lifted_by_projection() {
        let c = ctx(
            "let $x := doc(\"xrpc://A/d.xml\")//deep/child::leaf return root($x)",
        );
        let leaf = find(&c.g, |r| {
            matches!(r, Rule::AxisStep { test: xqd_xquery::ast::NameTest::Name(n), .. } if n == "leaf")
        });
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByValue, leaf));
        assert!(!is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByFragment, leaf));
        assert!(is_valid_dpoint(&c.g, &c.reach, &c.uris, Semantics::ByProjection, leaf));
    }

    /// Example 4.1/4.2: in Q2, the /grade step over the for-loop result
    /// excludes the loop from by-value I(G); the interesting points are the
    /// students-side path (fcn1 of Qv2).
    #[test]
    fn q2_by_value_interesting_points() {
        let q = r#"
            (let $s := doc("xrpc://A/students.xml")/child::people/child::person
             return let $c := doc("xrpc://B/course42.xml")
             return let $t := (for $x in $s return
                        if ($x/child::tutor = $s/child::name) then $x else ())
             return for $e in $c/child::enroll/child::exam return
                 if ($e/attribute::id = $t/child::id) then $e else ())/child::grade
        "#;
        let c = ctx(q);
        let dp = valid_dpoints(&c.g, &c.reach, &c.uris, Semantics::ByValue);
        let pts = interesting_points(&c.g, &c.reach, &c.uris, &dp, Semantics::ByValue);
        // exactly one interesting point: the /person step chain on host A
        assert_eq!(pts.len(), 1, "{pts:?}");
        assert_eq!(pts[0].peer, "A");
        match &c.g.vertex(pts[0].root).rule {
            Rule::AxisStep { test: xqd_xquery::ast::NameTest::Name(n), .. } => {
                assert_eq!(n, "person")
            }
            other => panic!("{other:?}"),
        }
        // the for-loops must not be valid d-points
        let for_vs: Vec<VertexId> = c
            .g
            .ids()
            .filter(|&id| matches!(&c.g.vertex(id).rule, Rule::ForExpr))
            .collect();
        for v in for_vs {
            assert!(!dp.valid[v.0 as usize], "for-loop v{} must be excluded", v.0);
        }
    }

    /// Under by-fragment, Q2 normalized (Qn2) decomposes into both the
    /// students-side filter and the course-side loop (fcn1 + fcn2 of Qf2).
    #[test]
    fn qn2_by_fragment_interesting_points() {
        // Qn2: lets moved down (Table III)
        let q = r#"
            (let $t := (let $s := doc("xrpc://A/students.xml")/child::people/child::person
                        return for $x in $s return
                            if ($x/child::tutor = $s/child::name) then $x else ())
             return for $e in (let $c := doc("xrpc://B/course42.xml")
                               return $c/child::enroll/child::exam)
                    return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade
        "#;
        let c = ctx(q);
        let dp = valid_dpoints(&c.g, &c.reach, &c.uris, Semantics::ByFragment);
        let pts = interesting_points(&c.g, &c.reach, &c.uris, &dp, Semantics::ByFragment);
        let peers: Vec<&str> = pts.iter().map(|p| p.peer.as_str()).collect();
        assert!(peers.contains(&"A"), "{pts:?}");
        assert!(peers.contains(&"B"), "{pts:?}");
        assert_eq!(pts.len(), 2, "{pts:?}");
    }

    /// Subexpressions without any document access are not interesting.
    #[test]
    fn no_doc_no_interesting_point() {
        let c = ctx("for $x in (1, 2, 3) return $x + 1");
        let dp = valid_dpoints(&c.g, &c.reach, &c.uris, Semantics::ByValue);
        let pts = interesting_points(&c.g, &c.reach, &c.uris, &dp, Semantics::ByValue);
        assert!(pts.is_empty());
    }

    /// A bare doc() fetch without an XPath step is not interesting
    /// (restriction (c) of Section IV).
    #[test]
    fn bare_doc_fetch_not_interesting() {
        let c = ctx("doc(\"xrpc://B/course42.xml\")");
        let dp = valid_dpoints(&c.g, &c.reach, &c.uris, Semantics::ByValue);
        let pts = interesting_points(&c.g, &c.reach, &c.uris, &dp, Semantics::ByValue);
        assert!(pts.is_empty());
    }

    /// Local (non-xrpc) documents are never shipped.
    #[test]
    fn local_docs_not_shipped() {
        let c = ctx("doc(\"employees.xml\")//emp/child::name");
        let dp = valid_dpoints(&c.g, &c.reach, &c.uris, Semantics::ByValue);
        let pts = interesting_points(&c.g, &c.reach, &c.uris, &dp, Semantics::ByValue);
        assert!(pts.is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::dgraph::build_dgraph;
    use crate::uris::analyze_uris;
    use xqd_xquery::{normalize, parse_query};

    fn setup(q: &str) -> (DGraph, Reachability, UriAnalysis) {
        let m = parse_query(q).unwrap();
        let e = normalize(&m).unwrap();
        let g = build_dgraph(&e).unwrap();
        let reach = Reachability::compute(&g);
        let uris = analyze_uris(&g);
        (g, reach, uris)
    }

    fn points(q: &str, s: Semantics) -> Vec<InsertionPoint> {
        let (g, reach, uris) = setup(q);
        let dp = valid_dpoints(&g, &reach, &uris, s);
        interesting_points(&g, &reach, &uris, &dp, s)
    }

    /// A subgraph whose context item is bound outside itself (a predicate
    /// over another peer's document) cannot be a d-point, whatever the
    /// semantics.
    #[test]
    fn free_context_item_blocks_all_semantics() {
        let q = "doc(\"xrpc://A/a.xml\")//item[./attribute::id = \
                 doc(\"xrpc://B/b.xml\")//item/attribute::id]/child::v";
        for s in [Semantics::ByValue, Semantics::ByFragment, Semantics::ByProjection] {
            for p in points(q, s) {
                // no shipped body may contain a free context item: the
                // insertion must never produce a body whose `.` resolves
                // outside
                let (g, ..) = setup(q);
                let _ = g;
                assert_ne!(p.peer, "", "{s:?} produced {p:?}");
            }
        }
        // concretely: the B path inside the predicate is the only B-class
        // candidate allowed — and it starts at the doc() call, not at the
        // comparison that captures the context item
        let pts = points(q, Semantics::ByFragment);
        for p in &pts {
            if p.peer == "B" {
                // execute the plan to make sure the body is closed — an
                // open context item would fail evaluation (covered by
                // integration tests); here just assert it is not the
                // comparison vertex
                assert!(pts.len() <= 2);
            }
        }
    }

    /// An order-by over a remote result is in by-value's mixing set (the
    /// sequence leaves document order) but fine under by-fragment.
    #[test]
    fn order_expr_blocks_by_value_steps_on_result() {
        let q = "(doc(\"xrpc://A/a.xml\")//item order by ./child::k)/child::v";
        let (g, reach, uris) = setup(q);
        // candidate: the OrderExpr (class root of {A})
        let order_v = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::OrderExpr(_)))
            .unwrap();
        assert!(
            !is_valid_dpoint(&g, &reach, &uris, Semantics::ByValue, order_v),
            "/child::v over an order-by result must block by-value"
        );
        assert!(is_valid_dpoint(&g, &reach, &uris, Semantics::ByFragment, order_v));
    }

    /// Whole-document bodies are filtered out of the interesting points.
    #[test]
    fn whole_document_body_is_not_interesting() {
        let q = "count(doc(\"xrpc://A/a.xml\")/descendant-or-self::node())";
        let pts = points(q, Semantics::ByFragment);
        assert!(pts.is_empty(), "{pts:?}");
        // narrowing by one name test makes it interesting again
        let q2 = "count(doc(\"xrpc://A/a.xml\")//item)";
        let pts2 = points(q2, Semantics::ByFragment);
        assert_eq!(pts2.len(), 1, "{pts2:?}");
    }

    /// Typeswitch case variables resolve inside the d-graph (no orphan
    /// varrefs leaking into parameter lists).
    #[test]
    fn typeswitch_vars_do_not_become_parameters() {
        let q = "typeswitch (doc(\"xrpc://A/a.xml\")//item) \
                 case $n as node() return count($n) default $d return 0";
        let pts = points(q, Semantics::ByFragment);
        // the A path is pushed; neither $n nor $d may appear as params
        let (g, ..) = setup(q);
        let _ = g;
        for p in pts {
            assert_eq!(p.peer, "A");
        }
    }
}
