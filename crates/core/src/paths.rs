//! Relative projection-path analysis (Section VI).
//!
//! For every `XRPCExpr`, by-projection decomposition needs to know:
//!
//! * per shipped **parameter**: the relative paths the remote body applies
//!   to it (`Urel(vparam)` / `Rrel(vparam)`), used to project the request
//!   message;
//! * for the call **result**: the relative paths the *caller* applies to it
//!   (`Urel(vxrpc)` / `Rrel(vxrpc)`), shipped in the request's
//!   `projection-paths` element so the remote peer can project the response
//!   (Fig. 5).
//!
//! The analysis is a structural induction over the d-graph computing, per
//! vertex, the set of *tracked paths* describing its value — each a tracked
//! source (a parameter or an `XRPCExpr` result) plus a suffix of axis steps
//! per the Table V grammar (including the `root()` / `id()` / `idref()`
//! markers, rules ROOT and ID). Consumption contexts accumulate paths into
//! the global *used* and *returned* buckets:
//!
//! * comparison / arithmetic / string-function operands atomize — they use
//!   the node **and its text descendants** (kept-alone nodes would lose
//!   their string value);
//! * node comparisons and EBV tests use just the nodes;
//! * constructor content, `deep-equal`, query results and re-shipped
//!   parameters need whole subtrees — *returned*;
//! * anything not understood falls back to *returned* (conservative).

use std::collections::HashMap;

use xqd_xml::Axis;
use xqd_xquery::ast::{ExecProjection, NameTest, PathSpec, RelPath, RelStep};

use crate::dgraph::{DGraph, Rule, VertexId};

/// A path rooted at a tracked source vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TrackedPath {
    source: VertexId,
    steps: Vec<RelStep>,
}

/// Longest suffix kept before giving up on precision (paths longer than
/// this are truncated to "return everything from here", i.e. marked
/// returned at the prefix).
const MAX_STEPS: usize = 12;

#[derive(Default)]
struct Accumulator {
    used: Vec<TrackedPath>,
    returned: Vec<TrackedPath>,
}

impl Accumulator {
    fn mark_used(&mut self, paths: &[TrackedPath]) {
        for p in paths {
            push_unique(&mut self.used, p.clone());
        }
    }

    /// Atomizing consumption: the node plus its text descendants.
    fn mark_atomized(&mut self, paths: &[TrackedPath]) {
        for p in paths {
            push_unique(&mut self.used, p.clone());
            let mut with_text = p.clone();
            with_text.steps.push(RelStep::Axis {
                axis: Axis::DescendantOrSelf,
                test: NameTest::Text,
            });
            if with_text.steps.len() <= MAX_STEPS {
                push_unique(&mut self.used, with_text);
            } else {
                push_unique(&mut self.returned, p.clone());
            }
        }
    }

    fn mark_returned(&mut self, paths: &[TrackedPath]) {
        for p in paths {
            push_unique(&mut self.returned, p.clone());
        }
    }
}

fn push_unique(v: &mut Vec<TrackedPath>, p: TrackedPath) {
    if !v.contains(&p) {
        v.push(p);
    }
}

struct Analyzer<'g> {
    g: &'g DGraph,
    /// Tracked sources: XRPCParam vertices and XRPCExpr vertices.
    acc: Accumulator,
    /// Memoized value paths per vertex (vertices are evaluated in one
    /// binding context because the d-graph already resolved varrefs).
    memo: HashMap<VertexId, Vec<TrackedPath>>,
    /// Context-item paths (stack, innermost last).
    context: Vec<Vec<TrackedPath>>,
}

impl<'g> Analyzer<'g> {
    fn paths_of(&mut self, v: VertexId) -> Vec<TrackedPath> {
        if let Some(p) = self.memo.get(&v) {
            return p.clone();
        }
        let result = self.compute(v);
        self.memo.insert(v, result.clone());
        result
    }

    fn extend_with_step(&mut self, input: Vec<TrackedPath>, step: RelStep) -> Vec<TrackedPath> {
        let mut out = Vec::new();
        for mut p in input {
            if p.steps.len() >= MAX_STEPS {
                // precision exhausted: conservatively return the prefix
                self.acc.mark_returned(&[p.clone()]);
                continue;
            }
            p.steps.push(step.clone());
            push_unique(&mut out, p);
        }
        out
    }

    fn compute(&mut self, v: VertexId) -> Vec<TrackedPath> {
        let vert = self.g.vertex(v).clone();
        match &vert.rule {
            Rule::Literal(_) | Rule::Empty | Rule::Root => vec![],
            Rule::XRPCParam { .. } => vec![TrackedPath { source: v, steps: vec![] }],
            Rule::VarRef(_) => match vert.varref {
                Some(t) => self.paths_of(t),
                None => vec![],
            },
            Rule::Var(_) => {
                if let Some(&c) = vert.children.first() {
                    self.paths_of(c)
                } else {
                    vec![]
                }
            }
            Rule::ContextItem => self.context.last().cloned().unwrap_or_default(),
            Rule::ExprSeq => {
                let mut out = Vec::new();
                for &c in &vert.children {
                    for p in self.paths_of(c) {
                        push_unique(&mut out, p);
                    }
                }
                out
            }
            Rule::ForExpr | Rule::LetExpr => {
                // children: [Var, ret]; Var memoization handles the binding
                self.paths_of(vert.children[1])
            }
            Rule::IfExpr => {
                // EBV of the condition: uses the nodes (existence only)
                let cond = self.paths_of(vert.children[0]);
                self.acc.mark_used(&cond);
                let mut out = self.paths_of(vert.children[1]);
                for p in self.paths_of(vert.children[2]) {
                    push_unique(&mut out, p);
                }
                out
            }
            Rule::Typeswitch { .. } => {
                let input = self.paths_of(vert.children[0]);
                self.acc.mark_used(&input);
                // children: input, (var, body)…, default var, default body
                let mut out = Vec::new();
                let mut i = 2;
                while i < vert.children.len() {
                    for p in self.paths_of(vert.children[i]) {
                        push_unique(&mut out, p);
                    }
                    i += 2;
                }
                out
            }
            Rule::CompExpr(_) | Rule::Arith(_) => {
                for &c in &vert.children {
                    let p = self.paths_of(c);
                    self.acc.mark_atomized(&p);
                }
                vec![]
            }
            Rule::NodeCmp(_) | Rule::And | Rule::Or => {
                for &c in &vert.children {
                    let p = self.paths_of(c);
                    self.acc.mark_used(&p);
                }
                vec![]
            }
            Rule::NodeSetExpr(_) => {
                let mut out = Vec::new();
                for &c in &vert.children {
                    for p in self.paths_of(c) {
                        push_unique(&mut out, p);
                    }
                }
                out
            }
            Rule::OrderExpr(_) => {
                let input = self.paths_of(vert.children[0]);
                self.context.push(input.clone());
                for &k in &vert.children[1..] {
                    let p = self.paths_of(k);
                    self.acc.mark_atomized(&p);
                }
                self.context.pop();
                input
            }
            Rule::Constructor { .. } => {
                // copied content needs whole subtrees
                for &c in &vert.children {
                    let p = self.paths_of(c);
                    self.acc.mark_returned(&p);
                }
                vec![] // fresh nodes: not tracked
            }
            Rule::AxisStep { axis, test } => {
                let input = self.paths_of(vert.children[0]);
                // predicates evaluate with the candidate nodes as context
                if vert.children.len() > 1 {
                    let ctx = self.extend_with_step(
                        input.clone(),
                        RelStep::Axis { axis: *axis, test: test.clone() },
                    );
                    self.context.push(ctx);
                    for &p in &vert.children[1..] {
                        let paths = self.paths_of(p);
                        self.acc.mark_atomized(&paths);
                    }
                    self.context.pop();
                }
                self.extend_with_step(input, RelStep::Axis { axis: *axis, test: test.clone() })
            }
            Rule::Filter => {
                let input = self.paths_of(vert.children[0]);
                self.context.push(input.clone());
                let pred = self.paths_of(vert.children[1]);
                self.acc.mark_atomized(&pred);
                self.context.pop();
                input
            }
            Rule::FunCall(name) => self.funcall(v, name, &vert.children),
            Rule::XRPCExpr { .. } => {
                // the remote body is analyzed too: its use of XRPCParam
                // sources defines the request projection, and whatever it
                // returns is serialized into the response, subtrees included
                let body_result = self.paths_of(vert.children[1]);
                self.acc.mark_returned(&body_result);
                // values shipped INTO a call leave our analysis (they are
                // copied into the request) — if they derive from a tracked
                // source (e.g. another call's result), that source must
                // deliver full subtrees for them
                for &c in &vert.children[2..] {
                    if let Some(t) = self.g.vertex(c).varref {
                        let p = self.paths_of(t);
                        self.acc.mark_returned(&p);
                    }
                }
                // the peer expression is atomized
                let peer = self.paths_of(vert.children[0]);
                self.acc.mark_atomized(&peer);
                vec![TrackedPath { source: v, steps: vec![] }]
            }
        }
    }

    fn funcall(&mut self, _v: VertexId, name: &str, children: &[VertexId]) -> Vec<TrackedPath> {
        let bare = name.strip_prefix("fn:").unwrap_or(name);
        match bare {
            "doc" | "collection" => {
                for &c in children {
                    let p = self.paths_of(c);
                    self.acc.mark_atomized(&p);
                }
                vec![] // fresh document source, not tracked
            }
            "root" => {
                let input = self.paths_of(children[0]);
                self.extend_with_step(input, RelStep::Root)
            }
            "id" | "idref" => {
                // rule (ID): first argument contributes values (atomized),
                // second is the document context the lookup runs in
                let vals = self.paths_of(children[0]);
                self.acc.mark_atomized(&vals);
                let ctx = if children.len() > 1 {
                    self.paths_of(children[1])
                } else {
                    vec![]
                };
                let step = if bare == "id" { RelStep::Id } else { RelStep::Idref };
                self.extend_with_step(ctx, step)
            }
            // existence/cardinality: nodes only
            "count" | "empty" | "exists" | "not" | "boolean" | "zero-or-one"
            | "exactly-one" | "reverse" => {
                let mut out = Vec::new();
                for &c in children {
                    let p = self.paths_of(c);
                    self.acc.mark_used(&p);
                    if matches!(bare, "reverse" | "zero-or-one" | "exactly-one") {
                        out.extend(p);
                    }
                }
                out
            }
            // name/uri inspection: nodes only
            "name" | "local-name" | "base-uri" | "document-uri" | "xrpc:base-uri"
            | "xrpc:document-uri" => {
                for &c in children {
                    let p = self.paths_of(c);
                    self.acc.mark_used(&p);
                }
                vec![]
            }
            // full structural comparison
            "deep-equal" => {
                for &c in children {
                    let p = self.paths_of(c);
                    self.acc.mark_returned(&p);
                }
                vec![]
            }
            // niladic context functions
            "true" | "false" | "static-base-uri" | "default-collation" | "current-dateTime" => {
                vec![]
            }
            // atomizing string/number functions (known-safe list)
            "string" | "data" | "number" | "sum" | "avg" | "min" | "max" | "concat"
            | "string-join" | "contains" | "starts-with" | "string-length" | "substring"
            | "upper-case" | "lower-case" | "normalize-space" | "distinct-values" => {
                for &c in children {
                    let p = self.paths_of(c);
                    self.acc.mark_atomized(&p);
                }
                vec![]
            }
            // unknown function: escape hatch — whole subtrees
            _ => {
                for &c in children {
                    let p = self.paths_of(c);
                    self.acc.mark_returned(&p);
                }
                vec![]
            }
        }
    }
}

/// Result of analyzing one graph: per tracked source, its used/returned
/// relative paths.
pub struct PathAnalysis {
    used: Vec<TrackedPath>,
    returned: Vec<TrackedPath>,
}

/// Analyzes the whole query graph: evaluates the root (marking its result
/// paths *returned* — the query result is fully materialized) and collects
/// the accumulated path effects.
pub fn analyze_paths(g: &DGraph) -> PathAnalysis {
    let mut a = Analyzer { g, acc: Accumulator::default(), memo: HashMap::new(), context: Vec::new() };
    let result = a.paths_of(g.root);
    a.acc.mark_returned(&result);
    PathAnalysis { used: a.acc.used, returned: a.acc.returned }
}

impl PathAnalysis {
    /// The relative `Urel`/`Rrel` spec for one tracked source vertex.
    ///
    /// Returned paths subsume identical used paths; the empty returned path
    /// (`self::node()`) subsumes everything — the source is shipped whole.
    pub fn spec_for(&self, source: VertexId) -> PathSpec {
        let mut returned: Vec<RelPath> = Vec::new();
        for p in &self.returned {
            if p.source == source {
                let rp = RelPath(p.steps.clone());
                if !returned.contains(&rp) {
                    returned.push(rp);
                }
            }
        }
        if returned.iter().any(|r| r.0.is_empty()) {
            // whole value shipped with subtrees: nothing else matters
            return PathSpec { used: vec![], returned: vec![RelPath(vec![])] };
        }
        let mut used: Vec<RelPath> = Vec::new();
        for p in &self.used {
            if p.source == source {
                let rp = RelPath(p.steps.clone());
                if !used.contains(&rp) && !returned.contains(&rp) {
                    used.push(rp);
                }
            }
        }
        PathSpec { used, returned }
    }
}

/// Computes the [`ExecProjection`] for every `XRPCExpr` vertex in the graph
/// and attaches it in place.
pub fn attach_projections(g: &mut DGraph) {
    let analysis = analyze_paths(g);
    let xrpc_vertices: Vec<VertexId> = g
        .ids()
        .filter(|&v| matches!(g.vertex(v).rule, Rule::XRPCExpr { .. }))
        .collect();
    for vx in xrpc_vertices {
        let children = g.vertex(vx).children.clone();
        // per-parameter specs come from analyzing the body with params as
        // sources — which the global analysis already did, because params
        // ARE vertices
        let mut params = Vec::new();
        for &p in &children[2..] {
            params.push(analysis.spec_for(p));
        }
        let result = analysis.spec_for(vx);
        if let Rule::XRPCExpr { projection } = &mut g.vertex_mut(vx).rule {
            *projection = Some(Box::new(ExecProjection { params, result }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgraph::{build_dgraph, to_expr};
    use xqd_xquery::parse_expr_str;

    fn analyzed(q: &str) -> (DGraph, PathAnalysis) {
        let e = parse_expr_str(q).unwrap();
        let g = build_dgraph(&e).unwrap();
        let a = analyze_paths(&g);
        (g, a)
    }

    fn param_vertex(g: &DGraph, var: &str) -> VertexId {
        g.ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::XRPCParam { var: v, .. } if v == var))
            .unwrap()
    }

    fn xrpc_vertex(g: &DGraph) -> VertexId {
        g.ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::XRPCExpr { .. }))
            .unwrap()
    }

    #[test]
    fn param_used_in_comparison_gets_attribute_path() {
        // the benchmark query's parameter shape: only @id of $t is needed
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//person return \
             execute at { \"B\" } params ($q := $t) { \
               for $e in doc(\"xrpc://B/b.xml\")//open_auction \
               return if ($e/child::seller/attribute::person = $q/attribute::id) \
                      then $e else () }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        assert!(spec.returned.is_empty(), "{spec:?}");
        let used: Vec<String> = spec.used.iter().map(|p| p.to_string()).collect();
        assert!(used.iter().any(|p| p.starts_with("attribute::id")), "{used:?}");
    }

    #[test]
    fn result_consumed_by_child_step_gets_returned_path() {
        let (g, a) = analyzed(
            "(execute at { \"B\" } params () { doc(\"xrpc://B/b.xml\")//annotation })\
             /child::author",
        );
        let spec = a.spec_for(xrpc_vertex(&g));
        let returned: Vec<String> = spec.returned.iter().map(|p| p.to_string()).collect();
        assert_eq!(returned, vec!["child::author"], "{spec:?}");
    }

    #[test]
    fn result_returned_whole_when_it_is_the_query_result() {
        let (g, a) = analyzed("execute at { \"B\" } params () { doc(\"xrpc://B/b.xml\")//x }");
        let spec = a.spec_for(xrpc_vertex(&g));
        assert_eq!(spec.returned, vec![RelPath(vec![])], "whole result shipped: {spec:?}");
    }

    #[test]
    fn reverse_step_on_result_is_recorded() {
        // Example 6.1: $bc/parent::a requires the response to include the
        // parent — the returned-path `parent::a` of Fig. 5
        let (g, a) = analyzed(
            "let $bc := execute at { \"p\" } params () \
                { element a { element b {()} }/child::b } \
             return count($bc/parent::a)",
        );
        let spec = a.spec_for(xrpc_vertex(&g));
        let returned: Vec<String> = spec.returned.iter().map(|p| p.to_string()).collect();
        let used: Vec<String> = spec.used.iter().map(|p| p.to_string()).collect();
        assert!(
            returned.iter().chain(&used).any(|p| p.starts_with("parent::a")),
            "returned={returned:?} used={used:?}"
        );
    }

    #[test]
    fn root_call_contributes_root_step() {
        let (g, a) = analyzed(
            "let $x := execute at { \"p\" } params () { doc(\"xrpc://p/d.xml\")//leaf } \
             return count(root($x))",
        );
        let spec = a.spec_for(xrpc_vertex(&g));
        let all: Vec<String> = spec
            .used
            .iter()
            .chain(&spec.returned)
            .map(|p| p.to_string())
            .collect();
        assert!(all.iter().any(|p| p.contains("root()")), "{all:?}");
    }

    #[test]
    fn constructor_content_needs_subtrees() {
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { element wrap { $q } }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        assert_eq!(spec.returned, vec![RelPath(vec![])], "{spec:?}");
    }

    #[test]
    fn attach_projections_fills_execute_nodes() {
        let e = parse_expr_str(
            "(execute at { \"B\" } params () { doc(\"xrpc://B/b.xml\")//annotation })\
             /child::author",
        )
        .unwrap();
        let mut g = build_dgraph(&e).unwrap();
        attach_projections(&mut g);
        let out = to_expr(&g);
        match &out {
            xqd_xquery::Expr::Path { start: Some(s), .. } => match s.as_ref() {
                xqd_xquery::Expr::Execute { projection, .. } => {
                    let proj = projection.as_ref().expect("projection attached");
                    assert_eq!(proj.result.returned.len(), 1);
                    assert_eq!(proj.result.returned[0].to_string(), "child::author");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn atomized_param_includes_text_descendants() {
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { $q/child::name = \"x\" }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        let used: Vec<String> = spec.used.iter().map(|p| p.to_string()).collect();
        assert!(used.iter().any(|p| p == "child::name"), "{used:?}");
        assert!(
            used.iter().any(|p| p.contains("text()")),
            "atomization needs text descendants: {used:?}"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::dgraph::build_dgraph;
    use xqd_xquery::parse_expr_str;

    fn analyzed(q: &str) -> (DGraph, PathAnalysis) {
        let e = parse_expr_str(q).unwrap();
        let g = build_dgraph(&e).unwrap();
        let a = analyze_paths(&g);
        (g, a)
    }

    fn param_vertex(g: &DGraph, var: &str) -> VertexId {
        g.ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::XRPCParam { var: v, .. } if v == var))
            .unwrap()
    }

    fn spec_paths(spec: &xqd_xquery::ast::PathSpec) -> (Vec<String>, Vec<String>) {
        (
            spec.used.iter().map(ToString::to_string).collect(),
            spec.returned.iter().map(ToString::to_string).collect(),
        )
    }

    #[test]
    fn order_by_key_on_param_is_atomized() {
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) \
             { ($q order by ./child::age) }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        let (used, returned) = spec_paths(&spec);
        // the items are returned (the body's result) …
        assert_eq!(returned, vec!["self::node()"], "{used:?} {returned:?}");
    }

    #[test]
    fn typeswitch_input_is_used() {
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) \
             { typeswitch ($q) case $n as node() return 1 default $d return 2 }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        let (used, returned) = spec_paths(&spec);
        assert!(returned.is_empty(), "{returned:?}");
        assert!(used.contains(&"self::node()".to_string()), "{used:?}");
    }

    #[test]
    fn unknown_function_escapes_to_returned() {
        // a UDF call that survives normalization (none should, but the
        // analysis must stay conservative if one does)
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { mystery($q/child::x) }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        let (_, returned) = spec_paths(&spec);
        assert!(
            returned.iter().any(|p| p.contains("child::x")),
            "conservative full subtree: {returned:?}"
        );
    }

    #[test]
    fn idref_contributes_idref_step() {
        let (g, a) = analyzed(
            "let $x := execute at { \"p\" } params () { doc(\"xrpc://p/d.xml\")//leaf } \
             return count(idref(\"k\", $x))",
        );
        let xrpc = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::XRPCExpr { .. }))
            .unwrap();
        let spec = a.spec_for(xrpc);
        let (used, returned) = spec_paths(&spec);
        assert!(
            used.iter().chain(&returned).any(|p| p.contains("idref()")),
            "{used:?} {returned:?}"
        );
    }

    #[test]
    fn count_uses_nodes_without_text() {
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) { count($q/child::x) }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        let (used, returned) = spec_paths(&spec);
        assert!(returned.is_empty(), "{returned:?}");
        assert!(used.contains(&"child::x".to_string()), "{used:?}");
        assert!(
            !used.iter().any(|p| p.contains("text()")),
            "count() does not atomize: {used:?}"
        );
    }

    #[test]
    fn node_set_ops_propagate_paths() {
        let (g, a) = analyzed(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at { \"B\" } params ($q := $t) \
             { $q/child::x union $q/child::y }",
        );
        let spec = a.spec_for(param_vertex(&g, "q"));
        let (_, returned) = spec_paths(&spec);
        assert!(returned.contains(&"child::x".to_string()), "{returned:?}");
        assert!(returned.contains(&"child::y".to_string()), "{returned:?}");
    }

    #[test]
    fn long_paths_truncate_conservatively() {
        // a chain longer than MAX_STEPS collapses into a returned prefix
        let steps = "/child::a".repeat(15);
        let (g, a) = analyzed(&format!(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             execute at {{ \"B\" }} params ($q := $t) {{ count($q{steps}) }}"
        ));
        let spec = a.spec_for(param_vertex(&g, "q"));
        assert!(
            !spec.returned.is_empty(),
            "precision exhaustion must fall back to returned: {spec:?}"
        );
    }
}
