//! XRPCExpr insertion (Section III-B).
//!
//! Given a chosen subgraph root `rs` and a target peer, the procedure:
//!
//! 1. inserts a fresh `XRPCExpr` vertex `vx` above `rs` and rewires the
//!    incoming parse edge,
//! 2. for every varref edge leaving the subgraph `(vi inside, vj:Var
//!    outside)`, inserts an `XRPCParam[$p := $qname]` vertex under `vx`
//!    and reroutes the inner references through it,
//! 3. with no outgoing varrefs, the parameter list is simply empty
//!    (`XRPCParam[()]` in the paper's notation).

use crate::dgraph::{DGraph, Rule, VertexId};
use xqd_xquery::ast::Atomic;

/// Inserts an `XRPCExpr` above `rs`, shipping the subgraph to `peer`.
/// Returns the new `XRPCExpr` vertex.
pub fn insert_xrpc(g: &mut DGraph, rs: VertexId, peer: &str) -> VertexId {
    assert_ne!(rs, g.root, "cannot wrap the query root in an XRPCExpr");
    let parent = g
        .vertex(rs)
        .parent
        .expect("non-root vertex must have a parent");

    // step 2 preparation: collect outgoing varref edges, grouped by target
    // Var vertex so each distinct binding becomes one parameter
    let outgoing = g.outgoing_varrefs(rs);
    let mut by_target: Vec<(VertexId, String)> = Vec::new();
    for (_inner, target) in &outgoing {
        if by_target.iter().all(|(t, _)| t != target) {
            let name = match &g.vertex(*target).rule {
                Rule::Var(n) => n.clone(),
                Rule::XRPCParam { var, .. } => var.clone(),
                other => panic!("varref target must be Var-like, found {other:?}"),
            };
            by_target.push((*target, name));
        }
    }

    // step 1: the XRPCExpr vertex with peer literal + body
    let peer_vertex = g.add_vertex(Rule::Literal(Atomic::Str(peer.to_string())), vec![]);
    let vx = g.add_vertex(Rule::XRPCExpr { projection: None }, vec![peer_vertex, rs]);
    g.replace_child(parent, rs, vx);
    // re-parent rs under vx (replace_child set vx's parent; fix rs)
    g.vertex_mut(rs).parent = Some(vx);

    // step 2: parameters
    for (i, (target, qname)) in by_target.iter().enumerate() {
        let pname = format!("dot{}", i + 1);
        let param = g.add_vertex(
            Rule::XRPCParam { var: pname.clone(), outer: qname.clone() },
            vec![],
        );
        g.vertex_mut(param).varref = Some(*target);
        g.vertex_mut(param).parent = Some(vx);
        g.vertex_mut(vx).children.push(param);
        // reroute inner references
        g.retarget_varrefs(rs, *target, &pname, param);
    }
    vx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgraph::{build_dgraph, to_expr};
    use xqd_xquery::{normalize, parse_query};

    fn graph_of(q: &str) -> DGraph {
        let m = parse_query(q).unwrap();
        let e = normalize(&m).unwrap();
        build_dgraph(&e).unwrap()
    }

    #[test]
    fn insertion_without_parameters() {
        let mut g = graph_of(
            "let $s := doc(\"xrpc://A/d.xml\")/child::people/child::person return $s",
        );
        // rs = the /person step (value of $s)
        let rs = g
            .ids()
            .find(|&id| {
                matches!(&g.vertex(id).rule,
                    Rule::AxisStep { test: xqd_xquery::ast::NameTest::Name(n), .. } if n == "person")
            })
            .unwrap();
        let vx = insert_xrpc(&mut g, rs, "A");
        assert_eq!(g.vertex(vx).children.len(), 2, "peer + body, no params");
        let e = to_expr(&g);
        assert_eq!(
            e.to_string(),
            "let $s := execute at { \"A\" } params () \
             { doc(\"xrpc://A/d.xml\")/child::people/child::person } return $s"
        );
    }

    #[test]
    fn insertion_creates_params_for_outgoing_varrefs() {
        // mirrors Example 3.2 / Fig. 3: the inner for references $c and $t
        let mut g = graph_of(
            "let $c := doc(\"xrpc://B/b.xml\") return \
             let $t := doc(\"xrpc://A/a.xml\")//p return \
             for $e in $c/child::x return if ($e/attribute::id = $t/child::id) then $e else ()",
        );
        let for_v = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::ForExpr))
            .unwrap();
        let vx = insert_xrpc(&mut g, for_v, "B");
        // peer + body + 2 params
        assert_eq!(g.vertex(vx).children.len(), 4);
        let e = to_expr(&g);
        let s = e.to_string();
        assert!(s.contains("params ($dot1 := $c, $dot2 := $t)"), "{s}");
        // inner refs were renamed
        assert!(s.contains("$dot1/child::x"), "{s}");
        assert!(s.contains("$dot2/child::id"), "{s}");
    }

    #[test]
    fn same_variable_used_twice_becomes_one_param() {
        let mut g = graph_of(
            "let $t := doc(\"xrpc://A/a.xml\")//p return \
             for $e in doc(\"xrpc://B/b.xml\")/child::x \
             return if ($e/child::a = $t/child::id and $e/child::b = $t/child::name) \
                    then $e else ()",
        );
        let for_v = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::ForExpr))
            .unwrap();
        let vx = insert_xrpc(&mut g, for_v, "B");
        assert_eq!(g.vertex(vx).children.len(), 3, "peer + body + ONE param for $t");
    }

    #[test]
    fn inserted_query_roundtrips_through_printer() {
        let mut g = graph_of(
            "let $s := doc(\"xrpc://A/d.xml\")/child::p return count($s)",
        );
        let rs = g
            .ids()
            .find(|&id| matches!(&g.vertex(id).rule, Rule::AxisStep { .. }))
            .unwrap();
        insert_xrpc(&mut g, rs, "A");
        let e = to_expr(&g);
        let reparsed = xqd_xquery::parse_expr_str(&e.to_string()).unwrap();
        assert_eq!(reparsed.to_string(), e.to_string());
    }
}
