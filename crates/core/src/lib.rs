//! # xqd-core — XQuery decomposition (the paper's primary contribution)
//!
//! Implements the query-distribution framework of *"Efficient Distribution
//! of Full-Fledged XQuery"* (ICDE 2009):
//!
//! * [`dgraph`] — the dependency graph (parse + varref edges) of Section III;
//! * [`uris`] — URI dependency sets `D(v)` and `hasMatchingDoc`;
//! * [`conditions`] — the insertion conditions i–iv for pass-by-value and
//!   their relaxations for pass-by-fragment / pass-by-projection, plus the
//!   interesting-decomposition-point selection;
//! * [`insertion`] — XRPCExpr insertion (Section III-B);
//! * [`letmotion`] — let-motion normalization (Section IV);
//! * [`codemotion`] — distributed code motion (Section IV, Example 4.3);
//! * [`paths`] — relative projection-path analysis (Section VI);
//! * [`replicas`] — replicated document placement and seeded replica
//!   selection (beyond the paper's single-host assumption);
//! * [`mod@decompose`] — the end-to-end decomposer.

pub mod codemotion;
pub mod conditions;
pub mod decompose;
pub mod dgraph;
pub mod insertion;
pub mod letmotion;
pub mod paths;
pub mod replicas;
pub mod semijoin;
pub mod uris;

pub use conditions::Semantics;
pub use decompose::{decompose, decompose_with, Decomposition, DecomposeOptions, Strategy};
pub use semijoin::SemijoinEdge;
pub use replicas::{rendezvous_order, ReplicaCatalog};
