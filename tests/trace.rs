//! Trace-shape suite: the span model of DESIGN.md "Observability", pinned
//! end-to-end.
//!
//! The chaos suite proves traces replay byte-identically; this suite pins
//! what is *in* them — span parentage, failover-rung annotations (rung
//! index, kind, breaker state), per-operator profiles summing to the
//! simulated wall time, and scheduler queue-residency spans under
//! saturation.

use std::time::Duration;

use xqd::{
    rendezvous_order, ExecOptions, FaultPlan, Federation, NetworkModel, Strategy, TenantSpec,
    Trace, WorkloadConfig, WorkloadEngine, ROOT_SPAN,
};

fn federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("emp", "people.xml", "<people><p><name>ann</name><dept>sales</dept></p><p><name>bob</name><dept>dev</dept></p></people>")
        .unwrap();
    f.load_document("org", "depts.xml", "<depts><dept name=\"sales\"/><dept name=\"dev\"/></depts>")
        .unwrap();
    f
}

fn traced(f: &mut Federation) {
    let opts = f.exec_options();
    f.set_exec_options(ExecOptions { trace: true, profile: true, ..opts });
}

/// The federated join shape of the `explain --analyze` acceptance bar:
/// scans one peer, probes the other per binding.
const JOIN: &str = "for $p in doc(\"xrpc://emp/people.xml\")//p \
                    where $p/dept = doc(\"xrpc://org/depts.xml\")//dept/@name \
                    return $p/name";

/// See `chaos_property.rs`: silences the intentional worker panics.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// Every span's parent must exist and be submitted before it, and every
/// span must lie inside the root's interval.
fn assert_well_formed(trace: &Trace) {
    assert_eq!(trace.root().id, ROOT_SPAN);
    assert_eq!(trace.root().parent, 0);
    for (i, s) in trace.spans.iter().enumerate().skip(1) {
        let parent = trace
            .spans
            .iter()
            .position(|p| p.id == s.parent)
            .unwrap_or_else(|| panic!("span {} has unknown parent {}", s.id, s.parent));
        assert!(parent < i, "span {} submitted before its parent", s.id);
        assert!(
            s.start_ns + s.dur_ns <= trace.total_ns,
            "span {} ({}) overruns the run: {}+{} > {}",
            s.id,
            s.name,
            s.start_ns,
            s.dur_ns,
            trace.total_ns
        );
    }
}

#[test]
fn query_spans_form_a_tree_and_cover_the_simulated_timeline() {
    let mut f = federation();
    traced(&mut f);
    let out = f.run(JOIN, Strategy::ByProjection).unwrap();
    let trace = out.trace.expect("trace enabled");
    assert_well_formed(&trace);

    // front-end markers are zero-duration children of the root
    for name in ["frontend.parse", "frontend.compile", "frontend.cache-miss"] {
        let span = trace.named(name).next().unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(span.parent, ROOT_SPAN, "{name} must hang off the root");
        assert_eq!(span.dur_ns, 0, "{name} must not consume simulated time");
    }

    // every rpc.attempt sits under a rung, every rung under a ladder, and
    // the attempt annotations carry peer + outcome
    for attempt in trace.named("rpc.attempt") {
        let rung = trace.spans.iter().find(|s| s.id == attempt.parent).unwrap();
        assert_eq!(rung.name, "rpc.rung");
        let ladder = trace.spans.iter().find(|s| s.id == rung.parent).unwrap();
        assert_eq!(ladder.name, "rpc.ladder");
        assert!(attempt.args.iter().any(|(k, _)| *k == "peer"));
        assert!(attempt.args.iter().any(|(k, _)| *k == "outcome"));
    }

    // ≥95% of the simulated wall time is attributed to named spans (here
    // it is exact by construction: the root's children partition the
    // clock), and the per-operator profile agrees with the same total
    assert!(trace.total_ns > 0, "the join must cost simulated time");
    assert!(trace.coverage() >= 0.95, "span coverage {:.3} below bar", trace.coverage());
    let profile = out.profile.expect("profile enabled");
    let prepared = out.compiled.expect("compiled");
    assert_eq!(
        profile.op_ns(prepared.plan.root),
        trace.total_ns,
        "the root operator's inclusive simulated time must equal the trace total"
    );
}

#[test]
fn cache_hits_are_marked_and_skip_the_compile_span() {
    let mut f = federation();
    traced(&mut f);
    let cold = f.run(JOIN, Strategy::ByProjection).unwrap().trace.unwrap();
    assert_eq!(cold.named("frontend.cache-miss").count(), 1);
    assert_eq!(cold.named("frontend.compile").count(), 1);
    assert_eq!(cold.named("frontend.cache-hit").count(), 0);

    let warm = f.run(JOIN, Strategy::ByProjection).unwrap().trace.unwrap();
    assert_eq!(warm.named("frontend.cache-hit").count(), 1);
    assert_eq!(warm.named("frontend.compile").count(), 0, "warm run must not recompile");
}

#[test]
fn failover_rungs_carry_kind_rung_index_and_breaker_state() {
    quiet_injected_panics();
    let seed = 7u64;
    let mut f = federation();
    f.replicate_peer("emp", "emp2").unwrap();
    f.replicate_peer("org", "org2").unwrap();
    f.set_replica_seed(seed);
    traced(&mut f);
    // kill the rendezvous-elected primary for emp so the ladder walks to
    // the stand-in — the trace must show both rungs
    let hosts = f.replica_catalog().hosts_serving_peer("emp");
    let primary = rendezvous_order(seed, &hosts)[0].clone();
    f.set_fault_plan(Some(FaultPlan::uniform(seed, 0.95).with_target(&primary)));
    let out = f.run(JOIN, Strategy::ByProjection).unwrap();
    let trace = out.trace.unwrap();
    assert_well_formed(&trace);
    assert!(out.metrics.replica_failovers > 0, "fixture must exercise failover");

    let rungs: Vec<_> = trace.named("rpc.rung").collect();
    assert!(rungs.len() >= 2, "a failover needs at least two rungs");
    for rung in &rungs {
        let arg = |k: &str| {
            rung.args
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("rung missing {k:?} annotation"))
        };
        assert!(["primary", "probe", "hedge"].contains(&arg("kind")), "{:?}", rung.args);
        assert!(["closed", "open", "half-open"].contains(&arg("breaker")), "{:?}", rung.args);
        arg("peer");
        let _: u32 = arg("rung").parse().expect("rung index is numeric");
    }
    // at least one ladder dialed two different hosts across its rungs
    let walked = trace.named("rpc.ladder").any(|ladder| {
        let peers: Vec<_> = trace
            .children_of(ladder.id)
            .filter(|s| s.name == "rpc.rung")
            .flat_map(|r| r.args.iter().filter(|(k, _)| *k == "peer").map(|(_, v)| v.clone()))
            .collect();
        peers.windows(2).any(|w| w[0] != w[1])
    });
    assert!(walked, "no ladder ever walked off the attacked primary");
    // injected faults surface as attempt annotations
    assert!(
        trace.named("rpc.attempt").any(|a| a.args.iter().any(|(k, _)| *k == "fault")),
        "a 0.95-rate schedule must mark at least one attempt with its fault"
    );
}

#[test]
fn saturated_workloads_emit_queue_residency_spans() {
    // one worker + heavy offered load: arrivals queue, some shed, and the
    // trace shows residency (sched.queued) before every queued dispatch
    let mut f = federation();
    let mut config = WorkloadConfig::new(vec![TenantSpec::new(
        "a",
        1,
        4000.0,
        vec!["count(doc(\"xrpc://emp/people.xml\")//name)".to_string()],
    )]);
    config.duration = Duration::from_millis(60);
    config.workers = 1;
    config.queue_depth = 8;
    config.deadline = Duration::from_millis(500);
    let (report, trace) = WorkloadEngine::run_traced(&mut f, &config).unwrap();
    assert_well_formed(&trace);
    assert!(report.shed > 0, "fixture must saturate admission control: {report:?}");

    let queued: Vec<_> = trace.named("sched.queued").collect();
    assert!(!queued.is_empty(), "saturation must queue work");
    assert!(queued.iter().any(|s| s.dur_ns > 0), "no span shows actual queue residency");
    assert_eq!(trace.named("sched.shed").count() as u64, report.shed);
    assert_eq!(
        trace.named("sched.run").count() as u64,
        report.completed + report.errored,
        "every dispatched query gets a sched.run span"
    );
    for s in trace.named("sched.shed") {
        assert!(s.args.iter().any(|(k, _)| *k == "retry_after_ms"));
    }
    // the trace-level histogram agrees with the report's exact percentiles
    let hist = trace.histogram("sched.run");
    assert_eq!(hist.count(), report.completed + report.errored);
}

#[test]
fn deadline_cancellations_appear_as_cancel_spans() {
    let mut f = federation();
    let mut config = WorkloadConfig::new(vec![TenantSpec::new(
        "a",
        1,
        4000.0,
        vec!["count(doc(\"xrpc://emp/people.xml\")//name)".to_string()],
    )]);
    config.duration = Duration::from_millis(50);
    config.workers = 1;
    config.deadline = Duration::from_micros(1500);
    config.queue_depth = 32;
    let (report, trace) = WorkloadEngine::run_traced(&mut f, &config).unwrap();
    assert!(report.deadline_cancelled > 0, "{report:?}");
    assert_eq!(trace.named("sched.cancelled").count() as u64, report.deadline_cancelled);
    for s in trace.named("sched.cancelled") {
        assert!(s.args.iter().any(|(k, v)| *k == "error" && v == "xrpc:timeout"));
    }
}

#[test]
fn traces_of_failed_runs_are_recoverable_and_annotated() {
    quiet_injected_panics();
    // a guaranteed-fatal schedule: every attempt against every peer dies,
    // and data-shipping degradation is off the table for execute-at bodies
    // with no replicas — drive until one seed actually errors
    let mut seen_error = false;
    for seed in 0..20u64 {
        let mut f = federation();
        traced(&mut f);
        f.set_fault_plan(Some(FaultPlan::uniform(seed, 1.0)));
        match f.run(JOIN, Strategy::ByProjection) {
            Ok(_) => {
                // degradation rescued it; the RunOutcome path was already
                // covered above
            }
            Err(e) => {
                assert!(e.code.is_some());
                let trace = f.take_trace().expect("failed run must leave its trace behind");
                assert!(
                    trace.root().args.iter().any(|(k, _)| *k == "error"),
                    "root span must carry the error annotation"
                );
                assert!(f.take_trace().is_none(), "take semantics: second call is empty");
                seen_error = true;
                break;
            }
        }
    }
    assert!(seen_error, "no all-faults schedule errored — fixture lost its teeth");
}
