//! Saturation semantics — the overload PR's headline invariant:
//!
//! > At 2x capacity (and beyond), every query either completes
//! > **bit-identically** to serial execution or returns a **typed**
//! > `Overloaded`/`Timeout` error — never a panic, a hang, or a wrong
//! > answer — and weighted fair queuing bounds any tenant's p99 inflation
//! > when a rogue tenant floods.
//!
//! The suite drives the multi-tenant workload engine (simulated clock,
//! seeded Poisson arrivals, real query execution) across seeds and load
//! factors.

use std::time::Duration;

use xqd::{
    Federation, NetworkModel, OutcomeKind, TenantSpec, WorkloadConfig, WorkloadEngine,
};

fn federation() -> Federation {
    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document(
        "emp",
        "people.xml",
        "<people><p><name>ann</name></p><p><name>bob</name></p><p><name>cat</name></p></people>",
    )
    .unwrap();
    fed.load_document(
        "hr",
        "depts.xml",
        "<depts><dept name=\"sales\"/><dept name=\"dev\"/><dept name=\"ops\"/></depts>",
    )
    .unwrap();
    fed
}

const QUERIES: [&str; 2] = [
    "count(doc(\"xrpc://emp/people.xml\")//name)",
    "doc(\"xrpc://hr/depts.xml\")//dept/@name",
];

fn tenant(name: &str, weight: u32, qps: f64) -> TenantSpec {
    TenantSpec::new(name, weight, qps, QUERIES.iter().map(|q| q.to_string()).collect())
}

fn capacity() -> f64 {
    let mut fed = federation();
    let config = WorkloadConfig::new(vec![tenant("probe", 1, 1.0)]);
    WorkloadEngine::capacity_qps(&mut fed, &config).unwrap()
}

#[test]
fn at_2x_capacity_every_query_completes_bit_identically_or_returns_a_typed_error() {
    let cap = capacity();
    for seed in 0..8u64 {
        let mut fed = federation();
        let mut config =
            WorkloadConfig::new(vec![tenant("a", 2, cap), tenant("b", 1, cap)]);
        config.seed = seed;
        config.duration = Duration::from_millis(80);
        config.queue_depth = 8;
        let report = WorkloadEngine::run(&mut fed, &config).unwrap();
        assert!(report.arrivals > 0, "seed {seed}: no arrivals");
        assert!(report.fully_accounted(), "seed {seed}: lost arrivals: {report:?}");
        assert!(
            report.results_identical,
            "seed {seed}: a completed query diverged from serial execution"
        );
        // every non-completed outcome carries a typed code
        for o in &report.outcomes {
            match o.kind {
                OutcomeKind::Completed => assert!(o.error_code.is_none()),
                OutcomeKind::Shed => {
                    assert_eq!(o.error_code.as_deref(), Some("xrpc:overloaded"), "seed {seed}")
                }
                OutcomeKind::DeadlineCancelled => {
                    assert_eq!(o.error_code.as_deref(), Some("xrpc:timeout"), "seed {seed}")
                }
                OutcomeKind::Errored => assert!(
                    o.error_code.is_some(),
                    "seed {seed}: untyped execution error"
                ),
            }
        }
        assert!(report.shed > 0, "seed {seed}: 2x load never tripped admission control");
    }
}

#[test]
fn goodput_stays_flat_past_saturation_instead_of_collapsing() {
    let cap = capacity();
    let run_at = |factor: f64| {
        let mut fed = federation();
        let mut config = WorkloadConfig::new(vec![tenant("a", 1, cap * factor)]);
        // fix the arrival count so both points see comparable workloads
        config.duration = Duration::from_secs_f64(300.0 / (cap * factor));
        config.queue_depth = 8;
        WorkloadEngine::run(&mut fed, &config).unwrap()
    };
    let at_1x = run_at(1.0);
    let at_3x = run_at(3.0);
    assert!(at_3x.shed > 0, "3x load must shed: {at_3x:?}");
    assert!(
        at_3x.goodput_qps >= at_1x.goodput_qps * 0.9,
        "goodput collapsed past saturation: {:.0} q/s at 1x vs {:.0} q/s at 3x",
        at_1x.goodput_qps,
        at_3x.goodput_qps
    );
}

#[test]
fn fair_queuing_bounds_the_victim_p99_when_a_rogue_tenant_floods() {
    let cap = capacity();
    let run = |fair: bool| {
        let mut fed = federation();
        let mut config = WorkloadConfig::new(vec![
            tenant("victim", 1, cap * 0.25),
            tenant("rogue", 1, cap * 8.0),
        ]);
        config.fair = fair;
        config.duration = Duration::from_millis(60);
        config.queue_depth = 32;
        config.deadline = Duration::from_secs(5);
        WorkloadEngine::run(&mut fed, &config).unwrap()
    };
    let wfq = run(true);
    let fifo = run(false);
    let victim_wfq = &wfq.per_tenant[0];
    let victim_fifo = &fifo.per_tenant[0];
    assert!(victim_wfq.completed > 0 && victim_fifo.completed > 0);
    assert!(
        victim_wfq.p99 < victim_fifo.p99,
        "WFQ must shield the victim from the rogue flood: WFQ p99 {:?} vs FIFO p99 {:?}",
        victim_wfq.p99,
        victim_fifo.p99
    );
    assert!(
        victim_wfq.p99 * 2 < victim_fifo.p99,
        "WFQ protection should be substantial, not marginal: {:?} vs {:?}",
        victim_wfq.p99,
        victim_fifo.p99
    );
    // the rogue pays for its own flood in both modes
    assert!(wfq.per_tenant[1].shed > 0, "the rogue's bounded queue never shed");
}

#[test]
fn tight_deadlines_cancel_queued_work_with_typed_timeouts_across_seeds() {
    let cap = capacity();
    for seed in [1u64, 7, 23] {
        let mut fed = federation();
        let mut config = WorkloadConfig::new(vec![tenant("a", 1, cap * 4.0)]);
        config.seed = seed;
        config.workers = 1;
        config.duration = Duration::from_millis(40);
        config.queue_depth = 64;
        // a deadline a hair above one service time: anything that queues
        // behind more than a couple of jobs can no longer make it
        config.deadline = Duration::from_secs_f64(3.0 / cap);
        let report = WorkloadEngine::run(&mut fed, &config).unwrap();
        assert!(
            report.deadline_cancelled > 0,
            "seed {seed}: backlogged queries never hit the deadline check: {report:?}"
        );
        assert!(report.fully_accounted(), "seed {seed}");
        assert!(report.results_identical, "seed {seed}");
    }
}

#[test]
fn shed_hints_are_honest_and_positive() {
    let cap = capacity();
    let mut fed = federation();
    let mut config = WorkloadConfig::new(vec![tenant("a", 1, cap * 3.0)]);
    config.duration = Duration::from_millis(60);
    config.queue_depth = 4;
    let report = WorkloadEngine::run(&mut fed, &config).unwrap();
    assert!(report.shed > 0);
    // the scheduler counters surface the queue pressure
    assert!(report.metrics.queued > 0);
    assert_eq!(report.metrics.shed, report.shed);
    assert!(report.metrics.peak_queue_depth > 0);
    assert!(
        report.metrics.peak_queue_depth <= 4,
        "one tenant's queue must respect its bound: {}",
        report.metrics.peak_queue_depth
    );
}
