//! Chaos property suite — the PR's headline invariant:
//!
//! > Under **any** seeded fault schedule, a query either returns results
//! > bit-identical to the fault-free run or a **typed** error — never a
//! > panic, a hang, or a silently wrong answer.
//!
//! The sweep drives 240 seeded fault schedules (40 seeds × 3 wire
//! semantics × 2 fixture queries) through the full stack — real wire
//! encodings, retries with deterministic backoff, graceful degradation —
//! and additionally replays every schedule on a fresh federation to prove
//! the whole run (results *and* counter-valued metrics, including retries
//! and fallbacks) is a pure function of the seed.

use std::time::Duration;

use xqd::{
    rendezvous_order, ExecOptions, FaultPlan, Federation, Metrics, NetworkModel, OutcomeKind,
    Strategy, TenantSpec, WorkloadConfig, WorkloadEngine,
};

const SEEDS: u64 = 40;
const FAULT_RATE: f64 = 0.3;
/// Near-total fault rate aimed at a single replica: the "kill the primary"
/// schedules of the replicated sweep.
const KILL_RATE: f64 = 0.9;

const STRATEGIES: [Strategy; 3] =
    [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection];

/// Fixture queries: one strategy-divergent single call (the shipped node's
/// ancestry differs across wire semantics, so a degradation that is not
/// strategy-faithful would be caught), one two-peer scatter.
const QUERIES: [&str; 2] = [
    "let $b := execute at {\"p\"} params () { doc(\"d.xml\")/a/b[1] } \
     return (count($b/parent::a), $b//c)",
    "(execute at {\"a\"} params () { count(doc(\"da.xml\")//x) }) + \
     (execute at {\"b\"} params () { count(doc(\"db.xml\")//x) })",
];

fn federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("p", "d.xml", "<a><b><c>one</c></b><b><c>two</c></b></a>").unwrap();
    f.load_document("a", "da.xml", "<r><x/><x/></r>").unwrap();
    f.load_document("b", "db.xml", "<r><x/></r>").unwrap();
    f
}

/// Silences the intentional `injected fault` worker panics (they are
/// captured and converted to typed errors); real panics still print.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

fn run_chaos(query: &str, strategy: Strategy, seed: u64) -> (Result<Vec<String>, String>, Metrics) {
    let mut f = federation();
    f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
    match f.run(query, strategy) {
        Ok(out) => (Ok(out.result), out.metrics),
        Err(e) => {
            let code = e.code.unwrap_or_else(|| {
                panic!("seed {seed} {strategy:?}: untyped error {:?}", e.message)
            });
            (Err(code), f.metrics())
        }
    }
}

#[test]
fn every_fault_schedule_yields_baseline_results_or_a_typed_error() {
    quiet_injected_panics();
    let mut schedules = 0u64;
    let mut succeeded = 0u64;
    let mut total = Metrics::default();
    for query in QUERIES {
        for strategy in STRATEGIES {
            let baseline = federation().run(query, strategy).unwrap();
            assert_eq!(baseline.metrics.faults_injected, 0);
            for seed in 0..SEEDS {
                schedules += 1;
                let (outcome, metrics) = run_chaos(query, strategy, seed);
                total.add(&metrics);
                match outcome {
                    Ok(result) => {
                        succeeded += 1;
                        assert_eq!(
                            result, baseline.result,
                            "seed {seed} {strategy:?}: wrong answer under faults"
                        );
                    }
                    Err(code) => assert!(
                        code.starts_with("xrpc:") || code == "err:dynamic",
                        "seed {seed} {strategy:?}: unexpected error code {code:?}"
                    ),
                }
            }
        }
    }
    assert_eq!(schedules, SEEDS * 3 * 2);
    assert!(schedules >= 200, "acceptance floor: at least 200 schedules");
    // the sweep must actually exercise the machinery, not just survive it
    assert!(total.faults_injected > 0, "no faults injected across the sweep");
    assert!(total.retries > 0, "no retries across the sweep");
    assert!(total.fallbacks > 0, "no graceful degradations across the sweep");
    assert!(succeeded > 0, "every schedule errored — retry/degradation never rescued a run");
}

#[test]
fn identical_seeds_replay_identical_runs_including_metrics() {
    quiet_injected_panics();
    for query in QUERIES {
        for strategy in STRATEGIES {
            for seed in 0..SEEDS {
                let (first, m1) = run_chaos(query, strategy, seed);
                let (second, m2) = run_chaos(query, strategy, seed);
                assert_eq!(first, second, "seed {seed} {strategy:?}: outcome not replayable");
                assert_eq!(
                    m1.counters(),
                    m2.counters(),
                    "seed {seed} {strategy:?}: counters (bytes/transfers/retries/faults/fallbacks) drifted"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// replicated-catalog schedules: the availability layer under chaos
// ---------------------------------------------------------------------------

/// The fixture federation with every peer's documents replicated onto a
/// second host, so each logical call has a two-host replica set.
fn replicated_federation(replica_seed: u64) -> Federation {
    let mut f = federation();
    for (primary, replica) in [("p", "p2"), ("a", "a2"), ("b", "b2")] {
        f.replicate_peer(primary, replica).unwrap();
    }
    f.set_replica_seed(replica_seed);
    f
}

/// The host the failover ladder dials first for `peer`'s calls while
/// everything is healthy — the rendezvous winner, i.e. "the primary" a
/// kill-schedule should target.
fn preferred_host(f: &Federation, peer: &str, replica_seed: u64) -> String {
    let hosts = f.replica_catalog().hosts_serving_peer(peer);
    rendezvous_order(replica_seed, &hosts)[0].clone()
}

/// The replicated sweep's victims: each fixture query paired with the
/// logical peer whose elected replica the schedule attacks (for the scatter
/// query that kills one slot's host mid-round while the other proceeds).
const VICTIMS: [(&str, &str); 2] = [(QUERIES[0], "p"), (QUERIES[1], "a")];

fn run_replicated_chaos(
    query: &str,
    victim: &str,
    strategy: Strategy,
    seed: u64,
    rate: f64,
) -> (Result<Vec<String>, String>, Metrics) {
    let mut f = replicated_federation(seed);
    let primary = preferred_host(&f, victim, seed);
    f.set_fault_plan(Some(FaultPlan::uniform(seed, rate).with_target(&primary)));
    match f.run(query, strategy) {
        Ok(out) => (Ok(out.result), out.metrics),
        Err(e) => {
            let code = e.code.unwrap_or_else(|| {
                panic!("seed {seed} {strategy:?}: untyped error {:?}", e.message)
            });
            (Err(code), f.metrics())
        }
    }
}

#[test]
fn killed_primaries_fail_over_to_replicas_without_degrading() {
    // The acceptance bar for the availability layer: as long as one replica
    // of every needed document stays healthy, every schedule ends in the
    // baseline answer — no typed error, no data-shipping degrade — because
    // the ladder walks off the attacked host onto its stand-in.
    quiet_injected_panics();
    let mut schedules = 0u64;
    let mut total = Metrics::default();
    for (query, victim) in VICTIMS {
        for strategy in STRATEGIES {
            let baseline = federation().run(query, strategy).unwrap();
            for seed in 0..SEEDS {
                schedules += 1;
                let (outcome, metrics) = run_replicated_chaos(query, victim, strategy, seed, KILL_RATE);
                total.add(&metrics);
                let result = outcome.unwrap_or_else(|code| {
                    panic!("seed {seed} {strategy:?}: errored ({code}) despite a healthy replica")
                });
                assert_eq!(
                    result, baseline.result,
                    "seed {seed} {strategy:?}: replica answered differently from the primary"
                );
                assert_eq!(
                    metrics.fallbacks, 0,
                    "seed {seed} {strategy:?}: degraded to data shipping with a healthy replica up"
                );
            }
        }
    }
    assert_eq!(schedules, SEEDS * 3 * 2);
    assert!(schedules >= 200, "acceptance floor: at least 200 replicated schedules");
    assert!(total.faults_injected > 0, "the kill schedules never fired");
    assert!(total.replica_failovers > 0, "no schedule ever walked to the replica");
}

#[test]
fn flapping_primaries_stay_correct_and_never_degrade() {
    // Flap rather than kill: the attacked host fails intermittently, so
    // runs mix same-host retries, replica failovers and clean first tries —
    // all must agree with the fault-free baseline bit for bit.
    quiet_injected_panics();
    let query = QUERIES[0];
    let mut stayed = 0u64;
    let mut walked = 0u64;
    for strategy in STRATEGIES {
        let baseline = federation().run(query, strategy).unwrap();
        for seed in 0..SEEDS {
            let (outcome, metrics) = run_replicated_chaos(query, "p", strategy, seed, 0.5);
            assert_eq!(
                outcome.as_deref().ok(),
                Some(&baseline.result[..]),
                "seed {seed} {strategy:?}: flapping primary broke the run"
            );
            assert_eq!(metrics.fallbacks, 0, "seed {seed} {strategy:?}");
            if metrics.replica_failovers > 0 {
                walked += 1;
            } else {
                stayed += 1;
            }
        }
    }
    assert!(walked > 0, "the flap never pushed a run onto the replica");
    assert!(stayed > 0, "the flap never let the primary answer — that is a kill, not a flap");
}

#[test]
fn hedged_requests_race_the_slow_primary_and_the_replica_wins() {
    // Deterministic hedge race: the elected host is not down, merely slow
    // (targeted latency fault far above the hedge delay), so the ladder
    // dispatches a hedge to the replica, the replica answers first, and the
    // loser's cost stays visible in the serialized ledger while the
    // overlapped ledger only runs to the winner.
    let query = QUERIES[0];
    for strategy in STRATEGIES {
        let baseline = federation().run(query, strategy).unwrap();
        let mut f = replicated_federation(7);
        let primary = preferred_host(&f, "p", 7);
        f.set_hedge(Some(Duration::from_millis(2)));
        f.set_fault_plan(Some(
            FaultPlan {
                p_latency: 1.0,
                extra_latency: Duration::from_millis(80),
                ..FaultPlan::none(5)
            }
            .with_target(&primary),
        ));
        let out = f.run(query, strategy).unwrap();
        assert_eq!(out.result, baseline.result, "{strategy:?}");
        assert_eq!(out.metrics.hedges, 1, "{strategy:?}: the slow chain must arm the hedge");
        assert_eq!(out.metrics.hedge_wins, 1, "{strategy:?}: the replica answers first");
        assert_eq!(out.metrics.replica_failovers, 0, "{strategy:?}: a hedge win is not a failover");
        assert_eq!(out.metrics.fallbacks, 0, "{strategy:?}");
        assert!(
            out.metrics.network_overlapped < out.metrics.network,
            "{strategy:?}: cancelling the loser must shorten the overlapped ledger \
             ({:?} vs {:?})",
            out.metrics.network_overlapped,
            out.metrics.network,
        );
    }
}

#[test]
fn replicated_schedules_replay_identically_including_availability_counters() {
    // Replay determinism extends to the availability layer: hedges, hedge
    // wins, breaker trips, probes and failovers are part of the counter
    // vector, so any nondeterminism in replica election, hedge jitter or
    // scoreboard application shows up as a drifted replay.
    quiet_injected_panics();
    for (query, victim) in VICTIMS {
        for strategy in STRATEGIES {
            for seed in 0..SEEDS {
                let run = |(q, v): (&str, &str)| {
                    let mut f = replicated_federation(seed);
                    let primary = preferred_host(&f, v, seed);
                    f.set_hedge(Some(Duration::from_millis(4)));
                    f.set_fault_plan(Some(
                        FaultPlan::uniform(seed, KILL_RATE).with_target(&primary),
                    ));
                    let outcome = f.run(q, strategy).map(|o| o.result).map_err(|e| e.code);
                    (outcome, f.metrics())
                };
                let (first, m1) = run((query, victim));
                let (second, m2) = run((query, victim));
                assert_eq!(first, second, "seed {seed} {strategy:?}: outcome not replayable");
                assert_eq!(
                    m1.counters(),
                    m2.counters(),
                    "seed {seed} {strategy:?}: availability counters drifted between replays"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// concurrent schedules: fault injection while N tenants run
// ---------------------------------------------------------------------------

/// The fixture queries as a two-tenant workload: each tenant hammers one of
/// the chaos queries, so every dispatched query walks the same wire paths
/// the single-query sweeps pin — now under scheduler contention.
fn chaos_workload(seed: u64, qps: f64) -> WorkloadConfig {
    let mut config = WorkloadConfig::new(vec![
        TenantSpec::new("alpha", 2, qps, vec![QUERIES[0].to_string()]),
        TenantSpec::new("beta", 1, qps, vec![QUERIES[1].to_string()]),
    ]);
    config.seed = seed;
    config.duration = Duration::from_millis(50);
    config.queue_depth = 6;
    config
}

#[test]
fn concurrent_schedules_under_faults_complete_identically_or_fail_typed() {
    // Fault injection (peer-down, hangs, panics, breaker trips) while two
    // tenants run a saturating workload: every arrival must end as a
    // bit-identical completion or a typed error — the single-query chaos
    // invariant survives scheduler contention.
    quiet_injected_panics();
    let mut total_faults = 0u64;
    let mut total_shed = 0u64;
    let mut total_errored = 0u64;
    for seed in 0..10u64 {
        let mut f = federation();
        f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
        let report = WorkloadEngine::run(&mut f, &chaos_workload(seed, 900.0)).unwrap();
        assert!(report.fully_accounted(), "seed {seed}: lost arrivals");
        assert!(
            report.results_identical,
            "seed {seed}: wrong answer under faults and contention"
        );
        assert!(report.all_errors_typed, "seed {seed}: untyped error escaped");
        for o in report.outcomes.iter().filter(|o| o.kind == OutcomeKind::Errored) {
            let code = o.error_code.as_deref().unwrap();
            assert!(
                code.starts_with("xrpc:") || code == "err:dynamic",
                "seed {seed}: unexpected error code {code:?}"
            );
        }
        total_faults += report.metrics.faults_injected;
        total_shed += report.shed;
        total_errored += report.errored;
    }
    assert!(total_faults > 0, "the fault schedules never fired under contention");
    assert!(total_shed > 0, "the workload never saturated admission control");
    assert!(total_errored > 0, "no query ever lost to a fault — the chaos was a no-op");
}

#[test]
fn concurrent_schedules_replay_identically_including_scheduler_counters() {
    // Replay determinism under contention: the whole multi-tenant run —
    // per-query fates, completion times on the simulated clock, and the
    // full 23-counter metric vector (wire + availability + scheduler) — is
    // a pure function of the seed.
    quiet_injected_panics();
    for seed in 0..10u64 {
        let run = || {
            let mut f = federation();
            f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
            WorkloadEngine::run(&mut f, &chaos_workload(seed, 900.0)).unwrap()
        };
        let (first, second) = (run(), run());
        assert_eq!(
            first.replay_signature(),
            second.replay_signature(),
            "seed {seed}: scheduler buckets or counters drifted between replays"
        );
        assert_eq!(first.outcomes.len(), second.outcomes.len(), "seed {seed}");
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.kind, b.kind, "seed {seed}: a query's fate drifted");
            assert_eq!(a.finish, b.finish, "seed {seed}: a completion time drifted");
            assert_eq!(a.error_code, b.error_code, "seed {seed}");
        }
    }
}

#[test]
fn fault_free_runs_are_unchanged_by_an_installed_empty_plan() {
    // a plan with all probabilities zero must be byte-identical to no plan
    for query in QUERIES {
        for strategy in STRATEGIES {
            let bare = federation().run(query, strategy).unwrap();
            let mut f = federation();
            f.set_fault_plan(Some(FaultPlan::none(123)));
            let planned = f.run(query, strategy).unwrap();
            assert_eq!(bare.result, planned.result, "{strategy:?}");
            assert_eq!(bare.metrics.counters(), planned.metrics.counters(), "{strategy:?}");
        }
    }
}

#[test]
fn plan_counters_participate_in_the_replay_contract() {
    // `counters()` grew the plan-compilation trio, so every replay
    // comparison above already covers it; this pins the values so a
    // regression that stops compiling (or stops counting) is loud.
    let mut f = federation();
    let first = f.run(QUERIES[0], Strategy::ByValue).unwrap();
    assert_eq!(first.metrics.plans_compiled, 1, "fresh run must lower a plan");
    assert_eq!(first.metrics.named().plan_cache(), [1, 0, 1]);
    let second = f.run(QUERIES[0], Strategy::ByValue).unwrap();
    assert_eq!(second.metrics.plans_compiled, 0, "warm run must reuse the plan");
    assert_eq!(second.metrics.named().plan_cache(), [0, 1, 0]);
}

// ---------------------------------------------------------------------------
// the trace as a determinism oracle
// ---------------------------------------------------------------------------

#[test]
fn replayed_fault_schedules_emit_byte_identical_traces() {
    // The trace file is part of the replay contract: every span timestamp
    // comes from the simulated clock, every id from coordinator program
    // order, and the trace id from the seeded PRNG — so replaying a chaos
    // schedule reproduces both export formats byte for byte.
    quiet_injected_panics();
    for query in QUERIES {
        for strategy in STRATEGIES {
            for seed in [0u64, 7, 23] {
                let run = || {
                    let mut f = federation();
                    let opts = f.exec_options();
                    f.set_exec_options(ExecOptions { trace: true, ..opts });
                    f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
                    match f.run(query, strategy) {
                        Ok(out) => out.trace.expect("trace enabled"),
                        Err(e) => {
                            assert!(e.code.is_some(), "untyped error under seed {seed}");
                            f.take_trace().expect("trace survives a failed run")
                        }
                    }
                };
                let (a, b) = (run(), run());
                assert_eq!(
                    a.to_json(),
                    b.to_json(),
                    "seed {seed} {strategy:?}: replayed JSON trace drifted"
                );
                assert_eq!(
                    a.to_chrome(),
                    b.to_chrome(),
                    "seed {seed} {strategy:?}: replayed Chrome trace drifted"
                );
                assert!(!a.spans.is_empty());
            }
        }
    }
}

#[test]
fn replayed_workloads_emit_byte_identical_scheduler_traces() {
    // Same oracle for the scheduler: queue-residency, run, shed and cancel
    // spans are submitted in event-loop order off the discrete-event clock.
    quiet_injected_panics();
    for seed in 0..4u64 {
        let run = || {
            let mut f = federation();
            f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
            let (report, trace) =
                WorkloadEngine::run_traced(&mut f, &chaos_workload(seed, 900.0)).unwrap();
            assert!(report.fully_accounted(), "seed {seed}");
            trace
        };
        let (a, b) = (run(), run());
        assert_eq!(a.to_json(), b.to_json(), "seed {seed}: scheduler trace drifted");
        assert!(a.named("sched.run").count() > 0, "seed {seed}: no sched.run spans");
    }
}
