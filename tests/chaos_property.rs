//! Chaos property suite — the PR's headline invariant:
//!
//! > Under **any** seeded fault schedule, a query either returns results
//! > bit-identical to the fault-free run or a **typed** error — never a
//! > panic, a hang, or a silently wrong answer.
//!
//! The sweep drives 240 seeded fault schedules (40 seeds × 3 wire
//! semantics × 2 fixture queries) through the full stack — real wire
//! encodings, retries with deterministic backoff, graceful degradation —
//! and additionally replays every schedule on a fresh federation to prove
//! the whole run (results *and* counter-valued metrics, including retries
//! and fallbacks) is a pure function of the seed.

use xqd::{FaultPlan, Federation, Metrics, NetworkModel, Strategy};

const SEEDS: u64 = 40;
const FAULT_RATE: f64 = 0.3;

const STRATEGIES: [Strategy; 3] =
    [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection];

/// Fixture queries: one strategy-divergent single call (the shipped node's
/// ancestry differs across wire semantics, so a degradation that is not
/// strategy-faithful would be caught), one two-peer scatter.
const QUERIES: [&str; 2] = [
    "let $b := execute at {\"p\"} params () { doc(\"d.xml\")/a/b[1] } \
     return (count($b/parent::a), $b//c)",
    "(execute at {\"a\"} params () { count(doc(\"da.xml\")//x) }) + \
     (execute at {\"b\"} params () { count(doc(\"db.xml\")//x) })",
];

fn federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("p", "d.xml", "<a><b><c>one</c></b><b><c>two</c></b></a>").unwrap();
    f.load_document("a", "da.xml", "<r><x/><x/></r>").unwrap();
    f.load_document("b", "db.xml", "<r><x/></r>").unwrap();
    f
}

/// Silences the intentional `injected fault` worker panics (they are
/// captured and converted to typed errors); real panics still print.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

fn run_chaos(query: &str, strategy: Strategy, seed: u64) -> (Result<Vec<String>, String>, Metrics) {
    let mut f = federation();
    f.set_fault_plan(Some(FaultPlan::uniform(seed, FAULT_RATE)));
    match f.run(query, strategy) {
        Ok(out) => (Ok(out.result), out.metrics),
        Err(e) => {
            let code = e.code.unwrap_or_else(|| {
                panic!("seed {seed} {strategy:?}: untyped error {:?}", e.message)
            });
            (Err(code), f.metrics())
        }
    }
}

#[test]
fn every_fault_schedule_yields_baseline_results_or_a_typed_error() {
    quiet_injected_panics();
    let mut schedules = 0u64;
    let mut succeeded = 0u64;
    let mut total = Metrics::default();
    for query in QUERIES {
        for strategy in STRATEGIES {
            let baseline = federation().run(query, strategy).unwrap();
            assert_eq!(baseline.metrics.faults_injected, 0);
            for seed in 0..SEEDS {
                schedules += 1;
                let (outcome, metrics) = run_chaos(query, strategy, seed);
                total.add(&metrics);
                match outcome {
                    Ok(result) => {
                        succeeded += 1;
                        assert_eq!(
                            result, baseline.result,
                            "seed {seed} {strategy:?}: wrong answer under faults"
                        );
                    }
                    Err(code) => assert!(
                        code.starts_with("xrpc:") || code == "err:dynamic",
                        "seed {seed} {strategy:?}: unexpected error code {code:?}"
                    ),
                }
            }
        }
    }
    assert_eq!(schedules, SEEDS * 3 * 2);
    assert!(schedules >= 200, "acceptance floor: at least 200 schedules");
    // the sweep must actually exercise the machinery, not just survive it
    assert!(total.faults_injected > 0, "no faults injected across the sweep");
    assert!(total.retries > 0, "no retries across the sweep");
    assert!(total.fallbacks > 0, "no graceful degradations across the sweep");
    assert!(succeeded > 0, "every schedule errored — retry/degradation never rescued a run");
}

#[test]
fn identical_seeds_replay_identical_runs_including_metrics() {
    quiet_injected_panics();
    for query in QUERIES {
        for strategy in STRATEGIES {
            for seed in 0..SEEDS {
                let (first, m1) = run_chaos(query, strategy, seed);
                let (second, m2) = run_chaos(query, strategy, seed);
                assert_eq!(first, second, "seed {seed} {strategy:?}: outcome not replayable");
                assert_eq!(
                    m1.counters(),
                    m2.counters(),
                    "seed {seed} {strategy:?}: counters (bytes/transfers/retries/faults/fallbacks) drifted"
                );
            }
        }
    }
}

#[test]
fn fault_free_runs_are_unchanged_by_an_installed_empty_plan() {
    // a plan with all probabilities zero must be byte-identical to no plan
    for query in QUERIES {
        for strategy in STRATEGIES {
            let bare = federation().run(query, strategy).unwrap();
            let mut f = federation();
            f.set_fault_plan(Some(FaultPlan::none(123)));
            let planned = f.run(query, strategy).unwrap();
            assert_eq!(bare.result, planned.result, "{strategy:?}");
            assert_eq!(bare.metrics.counters(), planned.metrics.counters(), "{strategy:?}");
        }
    }
}
