//! Join-equivalence suite — the semi-join rewrite's headline invariant:
//!
//! > Join-aware decomposition changes only the wire, never the answer:
//! > results are bit-identical with the rewrite on or off, flipping it off
//! > replays the pre-semi-join wire byte-for-byte against the interpreter
//! > oracle, and the key harvest rides the same failover ladder as every
//! > other remote call.
//!
//! Plus the plan-cache contract: the effective semi-join toggle is part of
//! the cache key, so flipping it never replays the wrong plan.

use std::time::Duration;

use xqd::{
    rendezvous_order, ExecOptions, FaultPlan, Federation, MetricsSnapshot, NetworkModel, Strategy,
};

/// Twelve students on peer A and exams with duplicated ids on peer B —
/// Q2's "many exams per student" key distribution, where `distinct-keys`
/// actually collapses the shipped set. Ten distinct ids keep the harvest
/// reply above the front-coded `<keyset>` run threshold.
const DOC_A: &str = "<people>\
    <person><name>n01</name><id>s01</id></person>\
    <person><name>n02</name><id>s02</id></person>\
    <person><name>n03</name><id>s03</id></person>\
    <person><name>n04</name><id>s04</id></person>\
    <person><name>n05</name><id>s05</id></person>\
    <person><name>n06</name><id>s06</id></person>\
    <person><name>n07</name><id>s07</id></person>\
    <person><name>n08</name><id>s08</id></person>\
    <person><name>n09</name><id>s09</id></person>\
    <person><name>n10</name><id>s10</id></person>\
    <person><name>n11</name><id>s11</id></person>\
    <person><name>n12</name><id>s12</id></person>\
    </people>";
const DOC_B: &str = "<enroll>\
    <exam id=\"s01\"><grade>7</grade></exam>\
    <exam id=\"s01\"><grade>8</grade></exam>\
    <exam id=\"s02\"><grade>6</grade></exam>\
    <exam id=\"s03\"><grade>9</grade></exam>\
    <exam id=\"s03\"><grade>6</grade></exam>\
    <exam id=\"s04\"><grade>8</grade></exam>\
    <exam id=\"s05\"><grade>5</grade></exam>\
    <exam id=\"s05\"><grade>2</grade></exam>\
    <exam id=\"s06\"><grade>3</grade></exam>\
    <exam id=\"s07\"><grade>4</grade></exam>\
    <exam id=\"s08\"><grade>9</grade></exam>\
    <exam id=\"s09\"><grade>1</grade></exam>\
    <exam id=\"zz\"><grade>1</grade></exam>\
    </enroll>";

/// Q2 of Table III over the fixture peers — the cross-peer value join the
/// rewrite targets. `$t` binds the exam fragment from peer B; every use on
/// peer A touches only the `@id` key column existentially, so join-aware
/// decomposition harvests `distinct-keys` from B instead of the fragment.
const JOIN_QUERY: &str = r#"(let $t := (let $x := doc("xrpc://B/course42.xml")/child::enroll/child::exam
            return for $e in $x return
                if ($e/child::grade > 0) then $e else ())
 return for $p in (let $s := doc("xrpc://A/students.xml")
                   return $s/descendant::person)
        return if ($p/child::id = $t/attribute::id)
               then $p/child::name else ())"#;

fn federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("A", "students.xml", DOC_A).unwrap();
    f.load_document("B", "course42.xml", DOC_B).unwrap();
    f
}

fn run_mode(
    semijoin: bool,
    strategy: Strategy,
    compile: bool,
    use_indexes: bool,
    fault: Option<FaultPlan>,
) -> (Result<Vec<String>, String>, MetricsSnapshot) {
    let mut f = federation();
    f.set_exec_options(ExecOptions { semijoin, compile, use_indexes, fault, ..ExecOptions::default() });
    match f.run(JOIN_QUERY, strategy) {
        Ok(out) => (Ok(out.result), out.metrics.named()),
        Err(e) => {
            let code = e
                .code
                .unwrap_or_else(|| panic!("{strategy:?}: untyped error {:?}", e.message));
            (Err(code), f.metrics().named())
        }
    }
}

/// See `chaos_property.rs`: silences the intentional worker panics.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// The core contract, all four strategies × indexes on/off:
/// - semi-join on and off produce bit-identical results;
/// - with semi-join off, compiled wire bytes equal the interpreter oracle
///   (flipping the flag reproduces the old wire exactly);
/// - with semi-join on, compiled and interpreter still agree on every
///   wire counter (the rewrite lives in decomposition, not the engine).
#[test]
fn semijoin_changes_bytes_never_results() {
    for strategy in Strategy::ALL {
        for use_indexes in [true, false] {
            let (res_off_i, ctr_off_i) = run_mode(false, strategy, false, use_indexes, None);
            let (res_off_c, ctr_off_c) = run_mode(false, strategy, true, use_indexes, None);
            let (res_on_i, ctr_on_i) = run_mode(true, strategy, false, use_indexes, None);
            let (res_on_c, ctr_on_c) = run_mode(true, strategy, true, use_indexes, None);

            assert_eq!(res_on_c, res_off_c, "{strategy:?}: semi-join changed the result");
            assert_eq!(res_on_i, res_off_i, "{strategy:?}: semi-join changed the interpreter");
            assert_eq!(res_off_c, res_off_i, "{strategy:?}: compiled diverged from oracle");
            assert_eq!(
                ctr_off_c.wire(),
                ctr_off_i.wire(),
                "{strategy:?} indexes={use_indexes}: off-wire not byte-identical to oracle"
            );
            assert_eq!(
                ctr_on_c.wire(),
                ctr_on_i.wire(),
                "{strategy:?} indexes={use_indexes}: on-wire not byte-identical to oracle"
            );
            // the join counters agree between engines too; the keyset
            // counters may fire even with the rewrite off (front-coding is
            // content-driven), but `semijoins` is the rewrite's alone
            assert_eq!(
                ctr_on_c.joins_and_scheduler(),
                ctr_on_i.joins_and_scheduler(),
                "{strategy:?}: join counters diverged"
            );
            assert_eq!(
                ctr_off_c.joins_and_scheduler(),
                ctr_off_i.joins_and_scheduler(),
                "{strategy:?}: join counters diverged"
            );
            assert_eq!(ctr_off_c.semijoins(), 0, "{strategy:?}: off-run counted semi-joins");
        }
    }
}

/// The decomposed strategies actually ship fewer message bytes with the
/// rewrite on, and the executor's join counters fire.
#[test]
fn semijoin_saves_bytes_and_counts_itself() {
    for strategy in [Strategy::ByFragment, Strategy::ByProjection] {
        let mut off = federation();
        off.set_exec_options(ExecOptions { semijoin: false, ..ExecOptions::default() });
        let off_out = off.run(JOIN_QUERY, strategy).unwrap();
        let on_out = federation().run(JOIN_QUERY, strategy).unwrap();
        assert!(
            on_out.metrics.message_bytes < off_out.metrics.message_bytes,
            "{strategy:?}: semi-join must shrink messages: {} vs {}",
            on_out.metrics.message_bytes,
            off_out.metrics.message_bytes
        );
        assert_eq!(on_out.metrics.semijoins, 1, "{strategy:?}");
        assert!(on_out.metrics.join_keys_shipped > 0, "{strategy:?}: no keyset on the wire");
        assert!(on_out.metrics.join_bytes_saved > 0, "{strategy:?}");
        // front-coding may fire on the off-run's code-motioned key column
        // too — only the `semijoins` counter belongs to the rewrite
        assert_eq!(off_out.metrics.semijoins, 0, "{strategy:?}");
    }
}

/// A dozen seeded fault schedules per strategy: with the semi-join on,
/// compiled and interpreted execution see the same wire, so every schedule
/// perturbs both identically — same outcome, same counters.
#[test]
fn semijoin_equivalence_holds_under_chaos() {
    quiet_injected_panics();
    for seed in 0..12u64 {
        for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
            let plan = Some(FaultPlan::uniform(seed, 0.3));
            let (res_i, ctr_i) = run_mode(true, strategy, false, true, plan);
            let (res_c, ctr_c) = run_mode(true, strategy, true, true, plan);
            assert_eq!(res_c, res_i, "seed {seed} {strategy:?}: outcome diverged");
            assert_eq!(
                ctr_c.wire(),
                ctr_i.wire(),
                "seed {seed} {strategy:?}: wire counters diverged"
            );
        }
    }
}

/// The key harvest is an ordinary remote call: when the producer's primary
/// replica is killed, the failover ladder redials the stand-in and the
/// join still returns the fault-free answer.
#[test]
fn key_harvest_survives_producer_peer_down() {
    quiet_injected_panics();
    let baseline = federation().run(JOIN_QUERY, Strategy::ByFragment).unwrap();
    assert_eq!(baseline.metrics.semijoins, 1, "fixture must exercise the rewrite");

    let seed = 7u64;
    let mut f = federation();
    f.replicate_peer("A", "A2").unwrap();
    f.replicate_peer("B", "B2").unwrap();
    f.set_replica_seed(seed);
    // kill the host the ladder dials first for the harvest call (peer B
    // is the producer side — its Execute was rewritten to distinct-keys)
    let hosts = f.replica_catalog().hosts_serving_peer("B");
    let primary = rendezvous_order(seed, &hosts)[0].clone();
    f.set_hedge(Some(Duration::from_millis(4)));
    f.set_fault_plan(Some(FaultPlan::uniform(seed, 0.9).with_target(&primary)));

    let out = f.run(JOIN_QUERY, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, baseline.result, "failover changed the join answer");
    assert_eq!(out.metrics.semijoins, 1, "degraded run must keep the semi-join plan");
    assert!(
        out.metrics.replica_failovers + out.metrics.hedges > 0,
        "schedule never hit the primary: {:?}",
        out.metrics
    );
}

/// Flipping the semi-join toggle is a different plan-cache key: on → off
/// misses (never replays the semi-join plan), and back on hits the
/// original entry.
#[test]
fn plan_cache_keys_on_the_semijoin_toggle() {
    let mut f = federation();
    let on = f.run(JOIN_QUERY, Strategy::ByFragment).unwrap();
    assert_eq!(on.metrics.plan_cache_misses, 1);
    assert_eq!(on.metrics.semijoins, 1);

    f.set_exec_options(ExecOptions { semijoin: false, ..ExecOptions::default() });
    let off = f.run(JOIN_QUERY, Strategy::ByFragment).unwrap();
    assert_eq!(off.metrics.plan_cache_misses, 1, "toggle flip must not hit the old plan");
    assert_eq!(off.metrics.semijoins, 0, "cached semi-join plan leaked into an off run");
    assert_eq!(off.result, on.result);

    f.set_exec_options(ExecOptions::default());
    let back = f.run(JOIN_QUERY, Strategy::ByFragment).unwrap();
    assert_eq!(back.metrics.plan_cache_hits, 1, "original semi-join plan should be reused");
    assert_eq!(back.metrics.semijoins, 1);
}
