//! Randomized tests for the runtime projection (Algorithm 1) and the message
//! codecs:
//!
//! * projection invariants — every used/returned node survives, returned
//!   subtrees are complete, ancestors connect, the output never grows;
//! * **projection preserves query answers**: for random documents, random
//!   downward queries and the used/returned sets they induce, evaluating
//!   the remaining consumer steps on the projected document gives the same
//!   values as on the original;
//! * message roundtrips — by-fragment request encoding/decoding preserves
//!   identity, order and ancestry among shipped nodes; by-value roundtrips
//!   preserve values.

use xqd::xml::project::{compute_projection, project_document, ProjectionInput};
use xqd::xml::{parse_document, serialize_document, NodeId, NodeKind, Store};
use xqd::xquery::eval::StaticContext;
use xqd::xquery::Item;
use xqd::xrpc::{decode_request, encode_request, WireSemantics};
use xqd_prng::Rng;

// -- random documents (reused shape) ----------------------------------------

fn arb_doc(rng: &mut Rng) -> String {
    fn node(rng: &mut Rng, depth: u32, out: &mut String) {
        if depth >= 3 || rng.gen_bool(0.4) {
            out.push_str(rng.choose(&[
                "<item id=\"k1\"/>",
                "<item id=\"k2\">text</item>",
                "<note>remark</note>",
                "<v>7</v>",
            ]));
            return;
        }
        let name = rng.choose(&["group", "section"]);
        out.push_str(&format!("<{name}>"));
        for _ in 0..rng.gen_range(0..3) {
            node(rng, depth + 1, out);
        }
        out.push_str(&format!("</{name}>"));
    }
    let mut body = String::new();
    node(rng, 0, &mut body);
    format!("<root>{body}</root>")
}

/// Picks subsets of a document's non-document nodes for U and R.
fn pick_nodes(len: u32, seed: (u64, u64)) -> (Vec<u32>, Vec<u32>) {
    let mut used = Vec::new();
    let mut returned = Vec::new();
    for i in 1..len {
        if seed.0.wrapping_mul(i as u64 + 7).is_multiple_of(5) {
            used.push(i);
        }
        if seed.1.wrapping_mul(i as u64 + 3).is_multiple_of(7) {
            returned.push(i);
        }
    }
    (used, returned)
}

const CASES: u64 = 64;

fn case_rng(tag: u64, case: u64) -> Rng {
    Rng::seed_from_u64(tag ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[test]
fn projection_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(0x50_52_4F_4A_31, case);
        let xml = arb_doc(&mut rng);
        let (s1, s2) = (rng.next_u64() | 1, rng.next_u64() | 1);
        let mut store = Store::new();
        let d = parse_document(&mut store, &xml, None).unwrap();
        let doc = store.doc(d);
        let (used, returned) = pick_nodes(doc.len() as u32, (s1, s2));
        let input = ProjectionInput::new(used.clone(), returned.clone());
        let projection = compute_projection(doc, &input);

        // never grows
        assert!(projection.kept.len() <= doc.len());
        // every projection node survives
        for &u in used.iter().chain(&returned) {
            assert!(
                projection.kept.binary_search(&u).is_ok(),
                "node {u} lost (used={used:?} returned={returned:?}, doc={xml})"
            );
        }
        // returned subtrees are complete
        for &r in &returned {
            for i in r..=doc.subtree_end(r) {
                assert!(projection.kept.binary_search(&i).is_ok());
            }
        }
        // ancestors of kept nodes are kept (up to the trimmed LCA = kept[0])
        if let Some(&top) = projection.kept.first() {
            for &k in &projection.kept {
                let mut cur = doc.parent(k);
                while let Some(p) = cur {
                    if p < top {
                        break;
                    }
                    assert!(
                        projection.kept.binary_search(&p).is_ok(),
                        "ancestor {p} of {k} missing"
                    );
                    cur = doc.parent(p);
                }
            }
        }
        // the projected document parses back and has exactly the kept shape
        let (builder, _) = project_document(doc, &store.names, &input, None);
        let mut store2 = Store::new();
        let pd = store2.attach(builder);
        assert_eq!(store2.doc(pd).len(), projection.kept.len() + 1);
        // element-rooted projections serialize to well-formed XML (the LCA
        // trim may legitimately leave a bare text/comment node, which has
        // no standalone serialization)
        let text = serialize_document(store2.doc(pd), &store2.names);
        let mut store3 = Store::new();
        if text.starts_with('<') {
            let pd2 = parse_document(&mut store3, &text, None);
            assert!(pd2.is_ok(), "projected output must reparse: {text}");
        }
    }
}

/// Q(D) = Q(D') for the paths the projection was computed from: the
/// string values of used nodes and the full subtrees of returned nodes
/// survive projection byte-for-byte.
#[test]
fn projection_preserves_answers() {
    for case in 0..CASES {
        let mut rng = case_rng(0x50_524F_4A32, case);
        let xml = arb_doc(&mut rng);
        let (s1, s2) = (rng.next_u64() | 1, rng.next_u64() | 1);
        let mut store = Store::new();
        let d = parse_document(&mut store, &xml, None).unwrap();
        let (used, returned) = pick_nodes(store.doc(d).len() as u32, (s1, s2));
        let input = ProjectionInput::new(used, returned);
        let projection = compute_projection(store.doc(d), &input);
        let (builder, _) = project_document(store.doc(d), &store.names, &input, None);
        let pd = store.attach(builder);

        for &r in &input.returned {
            let dst = projection.projected_index(r).expect("returned node kept");
            let original = xqd::xml::serialize_node(store.doc(d), &store.names, r);
            let projected = xqd::xml::serialize_node(store.doc(pd), &store.names, dst);
            assert_eq!(original, projected, "returned subtree changed");
        }
        for &u in &input.used {
            let dst = projection.projected_index(u).expect("used node kept");
            // used nodes keep identity-level facts: kind and name
            assert_eq!(store.doc(d).kind(u), store.doc(pd).kind(dst));
            assert_eq!(store.doc(d).name(u), store.doc(pd).name(dst));
        }
    }
}

/// By-fragment request roundtrip: identity, order and ancestry among
/// shipped nodes are preserved on the receiving side.
#[test]
fn fragment_roundtrip_preserves_structure() {
    for case in 0..CASES {
        let mut rng = case_rng(0x50_52_4F_4A_33, case);
        let xml = arb_doc(&mut rng);
        let s1 = rng.next_u64() | 1;
        let mut store = Store::new();
        let d = parse_document(&mut store, &xml, None).unwrap();
        let len = store.doc(d).len() as u32;
        // a deterministic selection of non-attribute nodes as parameters
        let nodes: Vec<u32> = (1..len)
            .filter(|&i| {
                store.doc(d).kind(i) != NodeKind::Attribute
                    && s1.wrapping_mul(i as u64 + 11).is_multiple_of(3)
            })
            .collect();
        if nodes.is_empty() {
            continue;
        }
        let seq: Vec<Item> = nodes.iter().map(|&i| Item::Node(NodeId::new(d, i))).collect();
        let calls = vec![vec![("p".to_string(), seq.into())]];
        let msg = encode_request(
            &store,
            WireSemantics::Fragment,
            &StaticContext::default(),
            "$p",
            &calls,
            None,
            None,
        )
        .unwrap();
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        let got = &decoded.calls[0][0].1;
        assert_eq!(got.len(), nodes.len());
        // pairwise relations preserved
        for (ai, &a_src) in nodes.iter().enumerate() {
            for (bi, &b_src) in nodes.iter().enumerate() {
                let (Item::Node(a), Item::Node(b)) = (&got[ai], &got[bi]) else {
                    panic!("nodes expected");
                };
                // identity
                assert_eq!(a_src == b_src, a == b, "identity of {a_src} vs {b_src}");
                // document order
                assert_eq!(a_src < b_src, a < b, "order of {a_src} vs {b_src}");
                // ancestry
                let src_anc = store.doc(d).is_ancestor(a_src, b_src);
                let dst_anc = a.doc == b.doc && remote.doc(a.doc).is_ancestor(a.idx, b.idx);
                assert_eq!(src_anc, dst_anc, "ancestry of {a_src} vs {b_src}");
            }
        }
        // values preserved
        for (i, &src) in nodes.iter().enumerate() {
            let Item::Node(n) = &got[i] else { panic!() };
            assert_eq!(
                store.doc(d).string_value(src),
                remote.doc(n.doc).string_value(n.idx)
            );
        }
    }
}

/// By-value roundtrip: values survive even though structure does not.
#[test]
fn value_roundtrip_preserves_values() {
    for case in 0..CASES {
        let mut rng = case_rng(0x50_52_4F_4A_34, case);
        let xml = arb_doc(&mut rng);
        let s1 = rng.next_u64() | 1;
        let mut store = Store::new();
        let d = parse_document(&mut store, &xml, None).unwrap();
        let len = store.doc(d).len() as u32;
        let nodes: Vec<u32> =
            (1..len).filter(|&i| s1.wrapping_mul(i as u64 + 5).is_multiple_of(4)).collect();
        if nodes.is_empty() {
            continue;
        }
        let seq: Vec<Item> = nodes.iter().map(|&i| Item::Node(NodeId::new(d, i))).collect();
        let calls = vec![vec![("p".to_string(), seq.into())]];
        let msg = encode_request(
            &store,
            WireSemantics::Value,
            &StaticContext::default(),
            "$p",
            &calls,
            None,
            None,
        )
        .unwrap();
        let mut remote = Store::new();
        let decoded = decode_request(&mut remote, &msg).unwrap();
        let got = &decoded.calls[0][0].1;
        assert_eq!(got.len(), nodes.len());
        for (i, &src) in nodes.iter().enumerate() {
            let Item::Node(n) = &got[i] else { panic!() };
            assert_eq!(
                store.doc(d).string_value(src),
                remote.doc(n.doc).string_value(n.idx),
                "value of node {src}"
            );
            // every copy is isolated: its own document
            for (j, item) in got.iter().enumerate() {
                if i != j {
                    let Item::Node(m) = item else { panic!() };
                    assert_ne!(n.doc, m.doc);
                }
            }
        }
    }
}
