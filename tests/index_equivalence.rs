//! The indexed path-step engine must be a pure optimization: with
//! `ExecOptions::use_indexes` toggled, every query must produce bit-identical
//! results *and* bit-identical wire traffic under all strategies, and plain
//! local evaluation must agree on every axis/name combination over random
//! documents. Randomized with the in-tree deterministic PRNG.

use xqd::xquery::{eval_query_with_indexes, parse_query};
use xqd::{ExecOptions, Federation, NetworkModel, Strategy};
use xqd_prng::Rng;

// -- random documents (same shape as the strategy-equivalence suite) --------

fn render_node(rng: &mut Rng, depth: u32, out: &mut String) {
    let leaf = depth >= 3 || rng.gen_bool(0.4);
    let name = if leaf {
        rng.choose(&["item", "entry", "ref", "note"])
    } else {
        rng.choose(&["group", "section", "bundle"])
    };
    out.push('<');
    out.push_str(name);
    if rng.gen_bool(0.5) {
        out.push_str(&format!(" id=\"k{}\"", rng.gen_range(0..6)));
    }
    out.push('>');
    if rng.gen_bool(0.5) {
        out.push_str(&format!("<v>{}</v>", rng.gen_range(0..50)));
    }
    if !leaf {
        for _ in 0..rng.gen_range(0..3) {
            render_node(rng, depth + 1, out);
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

fn arb_doc(rng: &mut Rng) -> String {
    let mut s = String::from("<root>");
    render_node(rng, 0, &mut s);
    s.push_str("</root>");
    s
}

/// A narrow, deeply nested document: every level repeats the same two
/// element names, so descendant steps from nested contexts overlap heavily.
fn deep_doc(levels: usize) -> String {
    let mut s = String::new();
    for i in 0..levels {
        let name = if i % 2 == 0 { "group" } else { "item" };
        s.push_str(&format!("<{name} id=\"k{}\">", i % 6));
    }
    s.push_str("<v>7</v>");
    for i in (0..levels).rev() {
        let name = if i % 2 == 0 { "group" } else { "item" };
        s.push_str(&format!("</{name}>"));
    }
    format!("<root>{s}</root>")
}

/// A flat, very wide document: many same-named siblings under one parent.
fn wide_doc(fanout: usize) -> String {
    let mut s = String::from("<root><group>");
    for i in 0..fanout {
        s.push_str(&format!("<item id=\"k{}\"><v>{}</v></item>", i % 6, i % 50));
    }
    s.push_str("</group></root>");
    s
}

// -- local evaluation: every axis × every name ------------------------------

/// Every XPath axis the parser accepts, stepped from every node of the
/// document, for every name in the alphabet (plus a name the document never
/// uses and one the store never interned).
#[test]
fn every_axis_name_combination_matches_scan() {
    const AXES: &[&str] = &[
        "child",
        "descendant",
        "descendant-or-self",
        "attribute",
        "self",
        "parent",
        "ancestor",
        "ancestor-or-self",
        "following",
        "following-sibling",
        "preceding",
        "preceding-sibling",
    ];
    const NAMES: &[&str] = &["item", "entry", "group", "section", "v", "id", "absent"];

    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x4944_5845 ^ case.wrapping_mul(0x9E37_79B9));
        let xml = arb_doc(&mut rng);
        let mut store = xqd::xml::Store::new();
        xqd::xml::parse_document(&mut store, &xml, Some("t.xml")).unwrap();

        for axis in AXES {
            for name in NAMES {
                let query = format!(
                    "doc(\"t.xml\")/descendant-or-self::node()/{axis}::{name}"
                );
                let module = parse_query(&query).unwrap();
                let scan = eval_query_with_indexes(&mut store, &module, false).unwrap();
                let indexed = eval_query_with_indexes(&mut store, &module, true).unwrap();
                assert_eq!(
                    scan, indexed,
                    "{axis}::{name} diverged (case {case})\ndoc={xml}"
                );
            }
        }
    }
}

// -- federated execution: results AND wire bytes identical ------------------

fn run_with_indexes(
    query: &str,
    doc_a: &str,
    doc_b: &str,
    strategy: Strategy,
    use_indexes: bool,
) -> (Vec<String>, u64) {
    let mut fed = Federation::new(NetworkModel::lan());
    fed.set_exec_options(ExecOptions { use_indexes, ..ExecOptions::default() });
    fed.load_document("peer1", "a.xml", doc_a).unwrap();
    fed.load_document("peer2", "b.xml", doc_b).unwrap();
    let out = fed.run(query, strategy).unwrap();
    (out.result, out.metrics.message_bytes)
}

/// All three wire semantics (plus the data-shipping baseline): toggling the
/// index engine must leave both the canonical result and the total message
/// bytes bit-identical.
#[test]
fn wire_semantics_unchanged_by_indexes() {
    let a = "doc(\"xrpc://peer1/a.xml\")";
    let b = "doc(\"xrpc://peer2/b.xml\")";
    let queries = [
        format!("count({a}//item)"),
        format!("{a}//item/@id"),
        format!("{a}/root/*/v"),
        format!("for $x in {a}//* where $x/v < 25 return name($x)"),
        format!(
            "let $t := (for $x in {a}//* return if ($x/v < 30) then $x else ()) \
             return for $e in {b}//item \
             return if ($e/@id = $t/@id) then $e/v else ()"
        ),
        format!("count(({a}//v)/parent::item)"),
        format!("element out {{ {a}//item/@id }}"),
    ];

    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(0x5749_5245 ^ case.wrapping_mul(0x9E37_79B9));
        let doc_a = arb_doc(&mut rng);
        let doc_b = arb_doc(&mut rng);
        let query = &queries[case as usize % queries.len()];
        for strategy in Strategy::ALL {
            let scan = run_with_indexes(query, &doc_a, &doc_b, strategy, false);
            let indexed = run_with_indexes(query, &doc_a, &doc_b, strategy, true);
            assert_eq!(
                scan.0, indexed.0,
                "{strategy:?} result diverged on {query} (case {case})"
            );
            assert_eq!(
                scan.1, indexed.1,
                "{strategy:?} message bytes diverged on {query} (case {case})"
            );
        }
    }
}

/// Runtime projection on deep and wide documents: the projected wire bytes
/// (and results) must not change when the peer evaluates the projection
/// paths through the index engine.
#[test]
fn runtime_projection_unchanged_on_deep_and_wide_docs() {
    let a = "doc(\"xrpc://peer1/a.xml\")";
    let b = "doc(\"xrpc://peer2/b.xml\")";
    let queries = [
        format!("count(({a}//v)/parent::item)"),
        format!("for $g in {a}//group return count($g/descendant::item)"),
        format!(
            "for $e in {b}//item return if ($e/@id = {a}//item/@id) \
             then $e/@id else ()"
        ),
    ];
    for (doc_a, doc_b) in [
        (deep_doc(60), wide_doc(40)),
        (wide_doc(120), deep_doc(30)),
    ] {
        for query in &queries {
            for strategy in [Strategy::ByProjection, Strategy::ByFragment, Strategy::ByValue] {
                let scan = run_with_indexes(query, &doc_a, &doc_b, strategy, false);
                let indexed = run_with_indexes(query, &doc_a, &doc_b, strategy, true);
                assert_eq!(scan.0, indexed.0, "{strategy:?} result diverged on {query}");
                assert_eq!(scan.1, indexed.1, "{strategy:?} bytes diverged on {query}");
            }
        }
    }
}
