//! Plan-equivalence suite — the compiled path's headline invariant:
//!
//! > Executing the flat plan IR ([`xqd::Plan`]) is **bit-identical** to the
//! > tree-walk interpreter — same results, same wire bytes — for every
//! > strategy, with indexes on or off, and under seeded fault schedules.
//!
//! Plus the coordinator's LRU plan cache contract: hit/miss counters are
//! exact, eviction follows recency, and a plan is never shared across
//! distinct static contexts or catalog generations.

use xqd::{
    ExecOptions, FaultPlan, Federation, MetricsSnapshot, NetworkModel, StaticContext, Strategy,
};

const DOC_A: &str = "<people>\
    <person><name>Ann</name><age>31</age><tutor>Bo</tutor></person>\
    <person><name>Bo</name><age>19</age><tutor>Ann</tutor></person>\
    <person><name>Cy</name><age>25</age><tutor>Ann</tutor></person>\
    </people>";
const DOC_B: &str = "<enrolls>\
    <exam id=\"Ann\"><grade>7</grade></exam>\
    <exam id=\"Cy\"><grade>9</grade></exam>\
    <exam id=\"Zed\"><grade>4</grade></exam>\
    </enrolls>";

/// Fixture queries spanning the compiled surface: plain remote paths,
/// filters with folded constants, cross-peer joins, scatter over two
/// peers, node-set operators, reverse axes and aggregation.
const QUERIES: &[&str] = &[
    "count(doc(\"xrpc://peer1/a.xml\")//person)",
    "doc(\"xrpc://peer1/a.xml\")//person[age < 10 + 20]/name",
    "for $p in doc(\"xrpc://peer1/a.xml\")//person \
     where $p/tutor = doc(\"xrpc://peer1/a.xml\")//person/name \
     return $p/name/text()",
    "for $e in doc(\"xrpc://peer2/b.xml\")//exam \
     where $e/@id = doc(\"xrpc://peer1/a.xml\")//person/name \
     return $e/grade",
    "count(doc(\"xrpc://peer1/a.xml\")//person) + \
     count(doc(\"xrpc://peer2/b.xml\")//exam)",
    "count(doc(\"xrpc://peer1/a.xml\")//name union doc(\"xrpc://peer1/a.xml\")//tutor)",
    "count((doc(\"xrpc://peer1/a.xml\")//age)/parent::person)",
    "sum(for $g in doc(\"xrpc://peer2/b.xml\")//grade return $g)",
];

fn federation() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document("peer1", "a.xml", DOC_A).unwrap();
    f.load_document("peer2", "b.xml", DOC_B).unwrap();
    f
}

fn run_mode(
    query: &str,
    strategy: Strategy,
    compile: bool,
    use_indexes: bool,
    fault: Option<FaultPlan>,
) -> (Result<Vec<String>, String>, MetricsSnapshot) {
    let mut f = federation();
    f.set_exec_options(ExecOptions { compile, use_indexes, fault, ..ExecOptions::default() });
    match f.run(query, strategy) {
        Ok(out) => (Ok(out.result), out.metrics.named()),
        Err(e) => {
            let code = e
                .code
                .unwrap_or_else(|| panic!("{strategy:?}: untyped error {:?}", e.message));
            (Err(code), f.metrics().named())
        }
    }
}

/// Silences the intentional `injected fault` worker panics (they are
/// captured and converted to typed errors); real panics still print.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// Compiled execution is bit-identical to the interpreter — results AND
/// wire bytes (message_bytes, document_bytes, transfers, ... — every
/// counter up to the plan-compilation trio, which legitimately differs) —
/// across all four strategies with indexes on and off.
#[test]
fn compiled_execution_matches_interpreter_bit_for_bit() {
    for query in QUERIES {
        for strategy in Strategy::ALL {
            for use_indexes in [true, false] {
                let (res_i, ctr_i) = run_mode(query, strategy, false, use_indexes, None);
                let (res_c, ctr_c) = run_mode(query, strategy, true, use_indexes, None);
                assert_eq!(
                    res_c, res_i,
                    "{strategy:?} indexes={use_indexes}: compiled result diverged on {query}"
                );
                assert_eq!(
                    ctr_c.wire(),
                    ctr_i.wire(),
                    "{strategy:?} indexes={use_indexes}: wire counters diverged on {query}"
                );
                // the trio itself: interpreter compiles nothing...
                assert_eq!(ctr_i.plan_cache(), [0, 0, 0], "interpreter touched plan counters");
                // ...while a fresh compiled federation misses once and lowers once
                assert_eq!(ctr_c.plan_cache(), [1, 0, 1], "compiled run miscounted on {query}");
                // the join counters must agree bit-for-bit too
                assert_eq!(
                    ctr_c.joins_and_scheduler(),
                    ctr_i.joins_and_scheduler(),
                    "{strategy:?} indexes={use_indexes}: join counters diverged on {query}"
                );
            }
        }
    }
}

/// The compiled plan prints remote call bodies byte-identically, so a
/// seeded fault schedule perturbs both executions at the same offsets:
/// compiled and interpreted runs agree on the outcome (same results or the
/// same typed error) and on every non-plan counter, fault by fault.
#[test]
fn compiled_execution_matches_interpreter_under_chaos() {
    quiet_injected_panics();
    let scatter = QUERIES[4];
    let single = QUERIES[2];
    for seed in 0..12u64 {
        for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
            for query in [single, scatter] {
                let plan = Some(FaultPlan::uniform(seed, 0.3));
                let (res_i, ctr_i) = run_mode(query, strategy, false, true, plan);
                let (res_c, ctr_c) = run_mode(query, strategy, true, true, plan);
                assert_eq!(
                    res_c, res_i,
                    "seed {seed} {strategy:?}: compiled outcome diverged on {query}"
                );
                assert_eq!(
                    ctr_c.wire(),
                    ctr_i.wire(),
                    "seed {seed} {strategy:?}: counters diverged on {query}"
                );
            }
        }
    }
}

/// Exact hit/miss accounting: a fresh federation misses then hits, and the
/// second run skips the front end entirely (`plans_compiled == 0`).
#[test]
fn plan_cache_counts_hits_and_misses_exactly() {
    let mut f = federation();
    let q = QUERIES[0];

    let first = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(first.metrics.plan_cache_misses, 1);
    assert_eq!(first.metrics.plan_cache_hits, 0);
    assert_eq!(first.metrics.plans_compiled, 1);
    assert_eq!(f.plan_cache_len(), 1);

    let second = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(second.metrics.plan_cache_hits, 1);
    assert_eq!(second.metrics.plan_cache_misses, 0);
    assert_eq!(second.metrics.plans_compiled, 0);
    assert_eq!(second.result, first.result);

    // a different strategy is a different key, not a stale hit
    let other = f.run(q, Strategy::ByFragment).unwrap();
    assert_eq!(other.metrics.plan_cache_misses, 1);
    assert_eq!(f.plan_cache_len(), 2);

    f.clear_plan_cache();
    assert_eq!(f.plan_cache_len(), 0);
    let again = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(again.metrics.plan_cache_misses, 1);
}

/// LRU eviction follows recency: with capacity 3, touching Q1 before
/// inserting Q4 evicts Q2 (the least recently used), not Q1.
#[test]
fn plan_cache_evicts_least_recently_used() {
    let mut f = federation();
    f.set_exec_options(ExecOptions { plan_cache_size: 3, ..ExecOptions::default() });
    let [q1, q2, q3, q4] = [QUERIES[0], QUERIES[1], QUERIES[5], QUERIES[7]];

    for q in [q1, q2, q3] {
        assert_eq!(f.run(q, Strategy::ByValue).unwrap().metrics.plan_cache_misses, 1);
    }
    assert_eq!(f.plan_cache_len(), 3);

    // touch Q1 so Q2 becomes the least recently used entry
    assert_eq!(f.run(q1, Strategy::ByValue).unwrap().metrics.plan_cache_hits, 1);

    // inserting Q4 at capacity evicts exactly one entry
    assert_eq!(f.run(q4, Strategy::ByValue).unwrap().metrics.plan_cache_misses, 1);
    assert_eq!(f.plan_cache_len(), 3);

    // Q2 was the victim...
    assert_eq!(f.run(q2, Strategy::ByValue).unwrap().metrics.plan_cache_misses, 1);
    // ...and the touched Q1 survived both evictions
    assert_eq!(f.run(q1, Strategy::ByValue).unwrap().metrics.plan_cache_hits, 1);
}

/// Distinct static contexts never share a plan: the fingerprint is part of
/// the cache key, so changing `base_uri` misses and changing it back hits
/// the original entry again.
#[test]
fn plan_cache_keys_on_static_context() {
    let mut f = federation();
    let q = QUERIES[0];

    assert_eq!(f.run(q, Strategy::ByValue).unwrap().metrics.plan_cache_misses, 1);

    f.set_static_context(StaticContext {
        base_uri: "xrpc://coordinator/".to_string(),
        ..StaticContext::default()
    });
    assert_eq!(f.run(q, Strategy::ByValue).unwrap().metrics.plan_cache_misses, 1);
    assert_eq!(f.plan_cache_len(), 2);

    f.set_static_context(StaticContext::default());
    assert_eq!(f.run(q, Strategy::ByValue).unwrap().metrics.plan_cache_hits, 1);
}

/// Topology changes invalidate cached replica routes: loading a document
/// bumps the catalog generation, so the next run re-resolves instead of
/// reusing a plan whose routes predate the new peer.
#[test]
fn plan_cache_invalidates_on_catalog_change() {
    let mut f = federation();
    let q = QUERIES[0];

    assert_eq!(f.run(q, Strategy::ByValue).unwrap().metrics.plan_cache_misses, 1);
    assert_eq!(f.run(q, Strategy::ByValue).unwrap().metrics.plan_cache_hits, 1);

    f.load_document("peer3", "c.xml", "<c/>").unwrap();
    let after = f.run(q, Strategy::ByValue).unwrap();
    assert_eq!(after.metrics.plan_cache_misses, 1);
    assert_eq!(after.metrics.plan_cache_hits, 0);
}

/// Capacity zero disables the cache outright — every run is a miss and the
/// cache stays empty — but execution still compiles and runs the plan.
#[test]
fn zero_capacity_disables_caching() {
    let mut f = federation();
    f.set_exec_options(ExecOptions { plan_cache_size: 0, ..ExecOptions::default() });
    let q = QUERIES[0];

    let baseline = run_mode(q, Strategy::ByValue, false, true, None).0.unwrap();
    for _ in 0..3 {
        let out = f.run(q, Strategy::ByValue).unwrap();
        assert_eq!(out.metrics.plan_cache_misses, 1);
        assert_eq!(out.metrics.plan_cache_hits, 0);
        assert_eq!(out.metrics.plans_compiled, 1);
        assert_eq!(out.result, baseline);
    }
    assert_eq!(f.plan_cache_len(), 0);
}
