//! The paper's worked examples as executable documentation: Table I (Q1),
//! the Section I intro example, Example 5.1 (the by-fragment message of
//! Fig. 4), Example 6.1 (the by-projection message of Fig. 5), and the
//! Fig. 6 runtime projection (via the public API).

use xqd::xml::project::{compute_projection, ProjectionInput};
use xqd::xml::Store;
use xqd::xquery::eval::StaticContext;
use xqd::xquery::{Item, Sequence};
use xqd::xrpc::{decode_request, encode_request, WireSemantics};
use xqd::{Federation, NetworkModel, Strategy};

// ---------------------------------------------------------------------------
// Fig. 4: the by-fragment request for earlier($bc, $abc)
// ---------------------------------------------------------------------------

#[test]
fn example_5_1_fragment_message_shape() {
    // Build <a><b><c/></b></a>; $bc = the b node, $abc = the a node.
    let mut store = Store::new();
    let doc = xqd::xml::parse_document(&mut store, "<a><b><c/></b></a>", None).unwrap();
    let bc = Item::Node(xqd::xml::NodeId::new(doc, 2));
    let abc = Item::Node(xqd::xml::NodeId::new(doc, 1));

    let calls = vec![vec![("l".to_string(), Sequence::unit(bc)), ("r".to_string(), Sequence::unit(abc))]];
    let msg = encode_request(
        &store,
        WireSemantics::Fragment,
        &StaticContext::default(),
        "if ($l << $r) then $l else $r",
        &calls,
        None,
        None,
    )
    .unwrap();

    // exactly one fragment: the ancestor <a> subtree (dedup of Fig. 4)
    assert_eq!(msg.matches("<fragment>").count(), 1, "{msg}");
    assert!(msg.contains("<a><b><c/></b></a>"), "{msg}");
    // $bc references nodeid 2 ($abc's child), $abc nodeid 1 — Fig. 4 exactly
    assert!(msg.contains("fragid=\"1\" nodeid=\"2\""), "{msg}");
    assert!(msg.contains("fragid=\"1\" nodeid=\"1\""), "{msg}");

    // the receiving peer reconstructs both with shared identity
    let mut remote = Store::new();
    let decoded = decode_request(&mut remote, &msg).unwrap();
    let params = &decoded.calls[0];
    let (Item::Node(l), Item::Node(r)) = (&params[0].1[0], &params[1].1[0]) else {
        panic!("node params expected");
    };
    assert_eq!(l.doc, r.doc, "same fragment document");
    assert!(remote.doc(l.doc).is_ancestor(r.idx, l.idx), "$abc is $bc's ancestor again");
    assert!(r < l, "$abc << $bc in document order");
}

/// The pass-by-value message for the same call serializes the node twice
/// (the "old" format at the top of Fig. 4) and the copies lose all
/// relationships.
#[test]
fn example_5_1_value_message_duplicates() {
    let mut store = Store::new();
    let doc = xqd::xml::parse_document(&mut store, "<a><b><c/></b></a>", None).unwrap();
    let bc = Item::Node(xqd::xml::NodeId::new(doc, 2));
    let abc = Item::Node(xqd::xml::NodeId::new(doc, 1));
    let calls = vec![vec![("l".to_string(), Sequence::unit(bc)), ("r".to_string(), Sequence::unit(abc))]];
    let msg = encode_request(
        &store,
        WireSemantics::Value,
        &StaticContext::default(),
        "body",
        &calls,
        None,
        None,
    )
    .unwrap();
    // <b><c/></b> appears twice: once alone, once inside the copy of <a>
    assert_eq!(msg.matches("<b><c/></b>").count(), 2, "{msg}");
    let mut remote = Store::new();
    let decoded = decode_request(&mut remote, &msg).unwrap();
    let params = &decoded.calls[0];
    let (Item::Node(l), Item::Node(r)) = (&params[0].1[0], &params[1].1[0]) else {
        panic!("node params expected");
    };
    assert_ne!(l.doc, r.doc, "separate copies in separate fragment documents");
}

// ---------------------------------------------------------------------------
// Example 6.1 / Fig. 5: the projected response for makenodes()
// ---------------------------------------------------------------------------

#[test]
fn example_6_1_projection_ships_parent_context() {
    let mut fed = Federation::new(NetworkModel::lan());
    fed.add_peer("example.org");
    let q = r#"
        declare function makenodes() as node()
        { element a { element b { element c {()} } }/b };
        let $bc := execute at {"example.org"} { makenodes() },
            $abc := $bc/parent::a
        return (name($abc), count($abc//c))
    "#;
    let out = fed.run(q, Strategy::ByProjection).unwrap();
    assert_eq!(out.result, vec!["atom:a", "atom:1"]);
    // the plan shipped a parent::a returned-path in the request
    let call = &out.plan.calls[0];
    let proj = call.projection.as_ref().expect("projection attached");
    // the paper's Fig. 5 ships parent::a as a returned-path; our analysis
    // classifies it as *used* (the parent is kept alone, its descendants
    // arrive through the result items themselves) — same projected message
    let mut paths: Vec<String> = proj.result.returned.iter().map(ToString::to_string).collect();
    paths.extend(proj.result.used.iter().map(ToString::to_string));
    assert!(
        paths.iter().any(|p| p.contains("parent::a")),
        "Fig. 5 projection path: {paths:?}"
    );
}

// ---------------------------------------------------------------------------
// Fig. 6 via the public API
// ---------------------------------------------------------------------------

#[test]
fn figure_6_projection_through_public_api() {
    let mut store = Store::new();
    let d = xqd::xml::parse_document(
        &mut store,
        "<a><b><c><d><e/><f/></d></c><g><h/></g><i/><j/><k><l/><m/></k></b><n><o/></n></a>",
        None,
    )
    .unwrap();
    let input = ProjectionInput::new(vec![9], vec![4, 11]); // U={i}, R={d,k}
    let projection = compute_projection(store.doc(d), &input);
    assert_eq!(projection.kept, vec![2, 3, 4, 5, 6, 9, 11, 12, 13]);
}

// ---------------------------------------------------------------------------
// The intro example (Section I): predicate push to example.org
// ---------------------------------------------------------------------------

#[test]
fn intro_example_decomposition_and_execution() {
    let q = r#"
        for $e in doc("xrpc://hq/employees.xml")//emp
        where $e/@dept = doc("xrpc://example.org/depts.xml")//dept/@name
        return $e
    "#;
    let module = xqd::parse_query(q).unwrap();
    let plan = xqd::decompose(&module, Strategy::ByValue).unwrap();
    let pushed = plan.calls.iter().find(|c| c.peer == "example.org").expect("predicate pushed");
    assert!(pushed.body.contains("dept"), "{}", pushed.body);

    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document(
        "hq",
        "employees.xml",
        "<emps><emp dept=\"sales\">joe</emp><emp dept=\"dev\">ada</emp></emps>",
    )
    .unwrap();
    fed.load_document("example.org", "depts.xml", "<depts><dept name=\"dev\"/></depts>")
        .unwrap();
    let out = fed.run(q, Strategy::ByValue).unwrap();
    assert_eq!(out.result, vec!["<emp dept=\"dev\">ada</emp>"]);
}

// ---------------------------------------------------------------------------
// Q1 (Table I): every annotated line of the example behaves as printed
// ---------------------------------------------------------------------------

#[test]
fn table_1_annotations_hold_locally() {
    let mut fed = Federation::new(NetworkModel::lan());
    fed.add_peer("p");
    let q = r#"
        declare function makenodes() as node()
        { element a { element b { element c {()} } }/b };
        declare function overlap($l as node(), $r as node()) as xs:boolean
        { not(empty($l//* intersect $r//*)) };
        declare function earlier($l as node(), $r as node()) as node()
        { if ($l << $r) then $l else $r };
        let $bc := makenodes(),
            $abc := $bc/parent::a
        return (
            name($bc),                               (: node <b><c/></b> :)
            name($abc),                              (: $bc has a parent $abc :)
            name(earlier($bc, $abc)),                (: always $abc :)
            overlap(earlier($bc, $abc), $bc),        (: always overlap :)
            count((for $node in ($bc, $abc)
                   let $first := earlier($bc, $abc)
                   where overlap($first, $node)
                   return $node)//c)                 (: returns only one <c/> :)
        )
    "#;
    let out = fed.run(q, Strategy::DataShipping).unwrap();
    assert_eq!(out.result, vec!["atom:b", "atom:a", "atom:a", "atom:true", "atom:1"]);
}

// ---------------------------------------------------------------------------
// Bulk RPC over the three semantics: the loop-nested call from Problem 4
// ---------------------------------------------------------------------------

#[test]
fn bulk_rpc_message_counts_and_results() {
    let q = r#"
        declare function earlier($l as node(), $r as node()) as node()
        { if ($l << $r) then $l else $r };
        let $bc := element a { element b { element c {()} } }/b,
            $abc := $bc/parent::a
        return count((for $node in ($bc, $abc)
                      return execute at {"p"} { earlier($node, $abc) })//c)
    "#;
    for (strategy, expected, transfers) in [
        (Strategy::ByValue, "atom:2", 2),      // copies duplicate <c/>
        (Strategy::ByFragment, "atom:1", 2),   // shared fragments dedup
        (Strategy::ByProjection, "atom:1", 2), // ditto, projected
    ] {
        let mut fed = Federation::new(NetworkModel::lan());
        fed.add_peer("p");
        let out = fed.run(q, strategy).unwrap();
        assert_eq!(out.result, vec![expected.to_string()], "{strategy:?}");
        assert_eq!(out.metrics.transfers, transfers, "{strategy:?} bulk batching");
        assert_eq!(out.metrics.remote_calls, 2, "{strategy:?}");
    }
}
