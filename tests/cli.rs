//! End-to-end tests of the `xqd` command-line binary.

use std::process::Command;

fn xqd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xqd"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xqd-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn run_inline_query_all_strategies() {
    let doc = write_temp("d1.xml", "<depts><dept name=\"sales\"/><dept name=\"dev\"/></depts>");
    let out = xqd()
        .args(["run", "-e", "count(doc(\"xrpc://org/depts.xml\")//dept)"])
        .args(["--peer", &format!("org:depts.xml={}", doc.display())])
        .args(["--strategy", "all", "--metrics"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("atom:2").count(), 4, "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pass-by-projection:"), "{stderr}");
}

#[test]
fn run_query_file() {
    let doc = write_temp("d2.xml", "<r><x>7</x></r>");
    let qf = write_temp("q.xq", "doc(\"xrpc://p/d.xml\")//x/text()");
    let out = xqd()
        .args(["run"])
        .arg(&qf)
        .args(["--peer", &format!("p:d.xml={}", doc.display())])
        .args(["--strategy", "fragment"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn explain_prints_plan() {
    let out = xqd()
        .args([
            "explain",
            "-e",
            "doc(\"xrpc://a/d.xml\")//item/v",
            "--strategy",
            "projection",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("execute at"), "{stdout}");
    assert!(stdout.contains("response projection"), "{stdout}");
}

#[test]
fn gen_xmark_writes_files() {
    let dir = std::env::temp_dir().join(format!("xqd-gen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("p.xml");
    let a = dir.join("a.xml");
    let out = xqd()
        .args(["gen-xmark", "--bytes", "20000", "--seed", "7"])
        .args(["--people", p.to_str().unwrap(), "--auctions", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let people = std::fs::read_to_string(&p).unwrap();
    assert!(people.starts_with("<site>"));
    assert!(std::fs::metadata(&a).unwrap().len() > 10_000);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = xqd().args(["run"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no query"));

    let out = xqd().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = xqd()
        .args(["run", "-e", "1", "--strategy", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));
}

#[test]
fn query_error_reported() {
    let out = xqd().args(["run", "-e", "doc(\"xrpc://nowhere/d.xml\")"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nowhere"));
}
