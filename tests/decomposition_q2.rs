//! Tables III & IV end-to-end: Q2 through normalization (Qc2 → Qn2),
//! by-value decomposition (Qv2), by-fragment decomposition with distributed
//! code motion (Qf2 + fcn2new), and by-projection — all via the public API,
//! each plan executed and checked against local evaluation.

use xqd::{decompose, parse_query, Federation, NetworkModel, Strategy};

const Q2: &str = r#"
(let $s := doc("xrpc://A/students.xml")/people/person,
     $c := doc("xrpc://B/course42.xml"),
     $t := $s[tutor = $s/name]
 for $e in $c/enroll/exam
 where $e/@id = $t/id
 return $e)/grade
"#;

fn fed() -> Federation {
    let mut f = Federation::new(NetworkModel::lan());
    f.load_document(
        "A",
        "students.xml",
        "<people>\
           <person><name>sara</name><tutor>ben</tutor><id>s1</id></person>\
           <person><name>tom</name><tutor>sara</tutor><id>s2</id></person>\
           <person><name>kim</name><tutor>tom</tutor><id>s3</id></person>\
         </people>",
    )
    .unwrap();
    f.load_document(
        "B",
        "course42.xml",
        "<enroll>\
           <exam id=\"s2\"><grade>A</grade></exam>\
           <exam id=\"s3\"><grade>B</grade></exam>\
           <exam id=\"s9\"><grade>F</grade></exam>\
         </enroll>",
    )
    .unwrap();
    f
}

#[test]
fn normalization_produces_qn2() {
    let module = parse_query(Q2).unwrap();
    let plan = decompose(&module, Strategy::ByFragment).unwrap();
    let qn2 = plan.normalized.to_string();
    // lets moved down: doc(B) now parse-related to its /enroll/exam use
    assert!(
        qn2.contains("for $e in doc(\"xrpc://B/course42.xml\")/child::enroll/child::exam"),
        "{qn2}"
    );
    // $t binding kept above the exam loop (evaluated once)
    let t_pos = qn2.find("let $t :=").expect("$t binding");
    let loop_pos = qn2.find("for $e in").expect("exam loop");
    assert!(t_pos < loop_pos, "{qn2}");
}

#[test]
fn qv2_structure_and_execution() {
    let module = parse_query(Q2).unwrap();
    let plan = decompose(&module, Strategy::ByValue).unwrap();
    // fcn1 of Qv2: the bare students path, no loops, no parameters
    let a = plan.calls.iter().find(|c| c.peer == "A").expect("fcn1");
    assert_eq!(a.body, "doc(\"xrpc://A/students.xml\")/child::people/child::person");
    assert!(a.params.is_empty());
    // execution matches local
    let baseline = fed().run(Q2, Strategy::DataShipping).unwrap();
    let out = fed().run(Q2, Strategy::ByValue).unwrap();
    assert_eq!(out.result, baseline.result);
    assert_eq!(baseline.result, vec!["<grade>A</grade>", "<grade>B</grade>"]);
}

#[test]
fn qf2_structure_and_execution() {
    let module = parse_query(Q2).unwrap();
    let plan = decompose(&module, Strategy::ByFragment).unwrap();
    assert_eq!(plan.calls.len(), 2, "{:#?}", plan.calls);
    // fcn1: the tutor-filter loop runs on A
    let a = plan.calls.iter().find(|c| c.peer == "A").expect("fcn1");
    assert!(a.body.contains("for $"), "{}", a.body);
    assert!(a.body.contains("child::tutor"), "{}", a.body);
    // fcn2new (Table IV code motion): only the extracted ids travel to B
    let b = plan.calls.iter().find(|c| c.peer == "B").expect("fcn2");
    assert_eq!(b.params.len(), 1);
    assert!(
        plan.rewritten.to_string().contains(":= data($t/child::id)"),
        "{}",
        plan.rewritten
    );
    // the distributed semijoin executes correctly
    let baseline = fed().run(Q2, Strategy::DataShipping).unwrap();
    let out = fed().run(Q2, Strategy::ByFragment).unwrap();
    assert_eq!(out.result, baseline.result);
    assert_eq!(out.metrics.document_bytes, 0, "no whole documents moved");
}

#[test]
fn by_projection_adds_paths_and_executes() {
    let module = parse_query(Q2).unwrap();
    let plan = decompose(&module, Strategy::ByProjection).unwrap();
    for call in &plan.calls {
        assert!(call.projection.is_some(), "call to {} lacks projection", call.peer);
    }
    let b = plan.calls.iter().find(|c| c.peer == "B").unwrap();
    let proj = b.projection.as_ref().unwrap();
    let returned: Vec<String> = proj.result.returned.iter().map(ToString::to_string).collect();
    assert!(returned.iter().any(|p| p.contains("grade")), "{returned:?}");
    let baseline = fed().run(Q2, Strategy::DataShipping).unwrap();
    let out = fed().run(Q2, Strategy::ByProjection).unwrap();
    assert_eq!(out.result, baseline.result);
}

/// The ablation knobs are visible through the public API and preserve
/// semantics.
#[test]
fn pipeline_options_preserve_semantics() {
    use xqd::core::DecomposeOptions;
    let baseline = fed().run(Q2, Strategy::DataShipping).unwrap();
    for (let_motion, code_motion) in
        [(true, true), (true, false), (false, true), (false, false)]
    {
        let opts = DecomposeOptions { let_motion, code_motion, ..Default::default() };
        let mut f = fed();
        let out = f.run_with(Q2, Strategy::ByFragment, opts).unwrap();
        assert_eq!(
            out.result, baseline.result,
            "let_motion={let_motion} code_motion={code_motion}"
        );
    }
}

/// Let-motion changes the *quality* of the plan (Section IV): with it, the
/// tutor filter runs on A and only extracted ids travel to B (the
/// semijoin); without it, the B-side class root sits above the whole
/// filter, so every `$s` person node is shipped to B as a parameter.
#[test]
fn let_motion_enables_the_semijoin() {
    use xqd::core::DecomposeOptions;
    let module = parse_query(Q2).unwrap();
    let with = xqd::core::decompose_with(
        &module,
        Strategy::ByFragment,
        DecomposeOptions::default(),
    )
    .unwrap();
    let without = xqd::core::decompose_with(
        &module,
        Strategy::ByFragment,
        DecomposeOptions { let_motion: false, ..Default::default() },
    )
    .unwrap();
    let with_b = with.calls.iter().find(|c| c.peer == "B").expect("B call");
    let without_b = without.calls.iter().find(|c| c.peer == "B").expect("B call");
    // normalized plan: the filter stayed on A; B receives no person nodes
    assert!(
        with_b.params.iter().all(|p| p.outer != "s"),
        "{:#?}",
        with_b.params
    );
    // unnormalized plan: the full $s sequence is a parameter of the B call
    assert!(
        without_b.params.iter().any(|p| p.outer == "s"),
        "{:#?}",
        without_b.params
    );
    // and the wire cost shows it
    let bytes = |opts| {
        let mut f = fed();
        f.run_with(Q2, Strategy::ByFragment, opts).unwrap().metrics.message_bytes
    };
    let with_bytes = bytes(DecomposeOptions::default());
    let without_bytes = bytes(DecomposeOptions { let_motion: false, ..Default::default() });
    assert!(
        with_bytes < without_bytes,
        "semijoin must be cheaper: {with_bytes} vs {without_bytes}"
    );
}
