//! **The headline invariant** (problem statement, Section I): for any query
//! `Q` over a distributed database `D`, the decomposed query `Q'` satisfies
//! `Q(D) = Q'(D)` under deep-equal semantics — for every strategy.
//!
//! Random federated queries are generated from a grammar of joins, filters,
//! aggregations, constructors and downward/upward paths over two randomly
//! generated remote documents; data-shipping execution (evaluation at the
//! originator) is the ground truth and every decomposing strategy must
//! match it canonically. Randomized with the in-tree deterministic PRNG.

use xqd::{Federation, NetworkModel, Strategy};
use xqd_prng::Rng;

// -- random documents -------------------------------------------------------

fn render_node(rng: &mut Rng, depth: u32, out: &mut String) {
    let leaf = depth >= 3 || rng.gen_bool(0.4);
    let name = if leaf {
        rng.choose(&["item", "entry", "ref", "note"])
    } else {
        rng.choose(&["group", "section", "bundle"])
    };
    out.push('<');
    out.push_str(name);
    if rng.gen_bool(0.5) {
        out.push_str(&format!(" id=\"k{}\"", rng.gen_range(0..6)));
    }
    out.push('>');
    if rng.gen_bool(0.5) {
        out.push_str(&format!("<v>{}</v>", rng.gen_range(0..50)));
    }
    if !leaf {
        for _ in 0..rng.gen_range(0..3) {
            render_node(rng, depth + 1, out);
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

fn arb_doc(rng: &mut Rng) -> String {
    let mut s = String::from("<root>");
    render_node(rng, 0, &mut s);
    s.push_str("</root>");
    s
}

// -- random queries ---------------------------------------------------------

/// Query templates over doc A (peer1) and doc B (peer2). All are
/// deterministic, error-free on the generated data, and exercise joins,
/// filters, aggregation, node sets, constructors and reverse axes.
fn query_templates() -> Vec<String> {
    let a = "doc(\"xrpc://peer1/a.xml\")";
    let b = "doc(\"xrpc://peer2/b.xml\")";
    vec![
        // plain remote paths
        format!("count({a}//item)"),
        format!("{a}//item/@id"),
        format!("{a}/root/*/v"),
        // filters (positional and value)
        format!("({a}//v)[2]"),
        format!("count({a}//item[@id = \"k1\"])"),
        format!("for $x in {a}//* where $x/v < 25 return name($x)"),
        // cross-document value join
        format!(
            "for $x in {a}//item for $y in {b}//item \
             where $x/@id = $y/@id return concat(name($x), \"-\", name($y))"
        ),
        // semijoin shape (the benchmark query's skeleton)
        format!(
            "let $t := (for $x in {a}//* return if ($x/v < 30) then $x else ()) \
             return for $e in {b}//item \
             return if ($e/@id = $t/@id) then $e/v else ()"
        ),
        // aggregation over a join
        format!(
            "sum(for $x in {a}//v for $y in {b}//v \
             return if ($x = $y) then 1 else ())"
        ),
        // node set operations on one document
        format!("count({a}//item union {a}//entry)"),
        format!("count({a}//* except {a}//item)"),
        format!("count({a}//group//item intersect {a}//item)"),
        // reverse axis after the call (projection territory)
        format!("count(({a}//v)/parent::item)"),
        format!("for $v in {b}//v return name($v/..)"),
        // constructors over remote data
        format!("element out {{ {a}//item/@id }}"),
        format!("count(element w {{ {a}//item }}//item)"),
        // order by
        format!("for $v in {a}//v order by $v descending return $v/text()"),
        // deep-equal across peers
        format!("deep-equal({a}//item/@id, {b}//item/@id)"),
        // node comparison within one peer
        format!("(({a}//item)[1] << ({a}//item)[2], count({a}//item))"),
        // distinct-values / string functions
        format!("distinct-values({b}//item/@id)"),
        format!("string-join(for $i in {a}//item return name($i), \",\")"),
        // quantified expressions over remote data
        format!("some $x in {a}//item satisfies $x/@id = \"k2\""),
        format!("every $v in {b}//v satisfies $v < 100"),
        format!("some $x in {a}//item, $y in {b}//item satisfies $x/@id = $y/@id"),
        // typeswitch on a remote result
        format!(
            "typeswitch (({a}//item)[1]) case $e as element(item) return name($e) \
             default $d return \"none\""
        ),
        // user-defined function shipped through normalization
        format!(
            "declare function pick($n as node()) as xs:string \
             {{ concat(name($n), \"/\", string(count($n/*))) }}; \
             for $g in {a}//group return pick($g)"
        ),
        // sequence builtins over remote values
        format!("subsequence({a}//v, 2, 2)"),
        format!("index-of({b}//v, 7)"),
        // fn:root on a remote node (projection territory)
        format!("count(root(({a}//item)[1])//item)"),
        // base-uri of shipped nodes (class-2 metadata)
        format!("base-uri(({a}//item)[1])"),
        // a two-hop shape: both loops remote, inner references outer
        format!(
            "for $g in {a}//group return count(for $y in {b}//item \
             return if ($y/@id = $g//item/@id) then $y else ())"
        ),
    ]
}

fn run_one(
    query: &str,
    doc_a: &str,
    doc_b: &str,
    strategy: Strategy,
) -> Result<Vec<String>, String> {
    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document("peer1", "a.xml", doc_a).map_err(|e| e.to_string())?;
    fed.load_document("peer2", "b.xml", doc_b).map_err(|e| e.to_string())?;
    fed.run(query, strategy).map(|o| o.result).map_err(|e| e.to_string())
}

#[test]
fn decomposed_execution_matches_local() {
    let templates = query_templates();
    for case in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x4551_5549_5600 ^ case.wrapping_mul(0x9E37_79B9));
        let doc_a = arb_doc(&mut rng);
        let doc_b = arb_doc(&mut rng);
        // cycle through the templates so every one runs against at least
        // three distinct random document pairs over the full loop
        let query = &templates[case as usize % templates.len()];
        let baseline = run_one(query, &doc_a, &doc_b, Strategy::DataShipping);
        for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
            let out = run_one(query, &doc_a, &doc_b, strategy);
            match (&baseline, &out) {
                (Ok(expected), Ok(got)) => assert_eq!(
                    got, expected,
                    "{strategy:?} diverged on {query} (case {case})\nA={doc_a}\nB={doc_b}"
                ),
                (Err(_), Err(_)) => {} // both error: acceptable
                (l, r) => panic!(
                    "{strategy:?} error divergence on {query} (case {case}): \
                     local={l:?} remote={r:?}"
                ),
            }
        }
    }
}
