//! **The headline invariant** (problem statement, Section I): for any query
//! `Q` over a distributed database `D`, the decomposed query `Q'` satisfies
//! `Q(D) = Q'(D)` under deep-equal semantics — for every strategy.
//!
//! Random federated queries are generated from a grammar of joins, filters,
//! aggregations, constructors and downward/upward paths over two randomly
//! generated remote documents; data-shipping execution (evaluation at the
//! originator) is the ground truth and every decomposing strategy must
//! match it canonically.

use proptest::prelude::*;
// `xqd::Strategy` shadows proptest's trait of the same name below; bring
// the trait's methods back into scope anonymously.
use proptest::strategy::Strategy as _;

use xqd::{Federation, NetworkModel, Strategy};

// -- random documents -------------------------------------------------------

#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    id: Option<u32>,
    value: Option<u32>,
    children: Vec<Node>,
}

fn arb_node(depth: u32) -> impl proptest::strategy::Strategy<Value = Node> {
    let leaf = (
        prop::sample::select(vec!["item", "entry", "ref", "note"]),
        prop::option::of(0u32..6),
        prop::option::of(0u32..50),
    )
        .prop_map(|(name, id, value)| Node { name, id, value, children: vec![] });
    leaf.prop_recursive(depth, 24, 3, |inner| {
        (
            prop::sample::select(vec!["group", "section", "bundle"]),
            prop::option::of(0u32..6),
            prop::option::of(0u32..50),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(name, id, value, children)| Node { name, id, value, children })
    })
}

fn render(node: &Node, out: &mut String) {
    out.push('<');
    out.push_str(node.name);
    if let Some(id) = node.id {
        out.push_str(&format!(" id=\"k{id}\""));
    }
    out.push('>');
    if let Some(v) = node.value {
        out.push_str(&format!("<v>{v}</v>"));
    }
    for c in &node.children {
        render(c, out);
    }
    out.push_str("</");
    out.push_str(node.name);
    out.push('>');
}

fn doc_of(root: &Node) -> String {
    let mut s = String::from("<root>");
    render(root, &mut s);
    s.push_str("</root>");
    s
}

// -- random queries ---------------------------------------------------------

/// Query templates over doc A (peer1) and doc B (peer2). All are
/// deterministic, error-free on the generated data, and exercise joins,
/// filters, aggregation, node sets, constructors and reverse axes.
fn arb_query() -> impl proptest::strategy::Strategy<Value = String> {
    let a = "doc(\"xrpc://peer1/a.xml\")";
    let b = "doc(\"xrpc://peer2/b.xml\")";
    prop::sample::select(vec![
        // plain remote paths
        format!("count({a}//item)"),
        format!("{a}//item/@id"),
        format!("{a}/root/*/v"),
        // filters (positional and value)
        format!("({a}//v)[2]"),
        format!("count({a}//item[@id = \"k1\"])"),
        format!("for $x in {a}//* where $x/v < 25 return name($x)"),
        // cross-document value join
        format!(
            "for $x in {a}//item for $y in {b}//item \
             where $x/@id = $y/@id return concat(name($x), \"-\", name($y))"
        ),
        // semijoin shape (the benchmark query's skeleton)
        format!(
            "let $t := (for $x in {a}//* return if ($x/v < 30) then $x else ()) \
             return for $e in {b}//item \
             return if ($e/@id = $t/@id) then $e/v else ()"
        ),
        // aggregation over a join
        format!(
            "sum(for $x in {a}//v for $y in {b}//v \
             return if ($x = $y) then 1 else ())"
        ),
        // node set operations on one document
        format!("count({a}//item union {a}//entry)"),
        format!("count({a}//* except {a}//item)"),
        format!("count({a}//group//item intersect {a}//item)"),
        // reverse axis after the call (projection territory)
        format!("count(({a}//v)/parent::item)"),
        format!("for $v in {b}//v return name($v/..)"),
        // constructors over remote data
        format!("element out {{ {a}//item/@id }}"),
        format!("count(element w {{ {a}//item }}//item)"),
        // order by
        format!("for $v in {a}//v order by $v descending return $v/text()"),
        // deep-equal across peers
        format!("deep-equal({a}//item/@id, {b}//item/@id)"),
        // node comparison within one peer
        format!("(({a}//item)[1] << ({a}//item)[2], count({a}//item))"),
        // distinct-values / string functions
        format!("distinct-values({b}//item/@id)"),
        format!("string-join(for $i in {a}//item return name($i), \",\")"),
        // quantified expressions over remote data
        format!("some $x in {a}//item satisfies $x/@id = \"k2\""),
        format!("every $v in {b}//v satisfies $v < 100"),
        format!(
            "some $x in {a}//item, $y in {b}//item satisfies $x/@id = $y/@id"
        ),
        // order by over a join variable
        format!("for $v in {a}//v order by $v descending return $v/text()"),
        // typeswitch on a remote result
        format!(
            "typeswitch (({a}//item)[1]) case $e as element(item) return name($e) \
             default $d return \"none\""
        ),
        // user-defined function shipped through normalization
        format!(
            "declare function pick($n as node()) as xs:string \
             {{ concat(name($n), \"/\", string(count($n/*))) }}; \
             for $g in {a}//group return pick($g)"
        ),
        // sequence builtins over remote values
        format!("subsequence({a}//v, 2, 2)"),
        format!("index-of({b}//v, 7)"),
        // fn:root on a remote node (projection territory)
        format!("count(root(({a}//item)[1])//item)"),
        // base-uri of shipped nodes (class-2 metadata)
        format!("base-uri(({a}//item)[1])"),
        // a two-hop shape: both loops remote, inner references outer
        format!(
            "for $g in {a}//group return count(for $y in {b}//item \
             return if ($y/@id = $g//item/@id) then $y else ())"
        ),
    ])
}

fn run_one(query: &str, doc_a: &str, doc_b: &str, strategy: Strategy) -> Result<Vec<String>, String> {
    let mut fed = Federation::new(NetworkModel::lan());
    fed.load_document("peer1", "a.xml", doc_a).map_err(|e| e.to_string())?;
    fed.load_document("peer2", "b.xml", doc_b).map_err(|e| e.to_string())?;
    fed.run(query, strategy).map(|o| o.result).map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn decomposed_execution_matches_local(
        a in arb_node(3),
        b in arb_node(3),
        query in arb_query(),
    ) {
        let doc_a = doc_of(&a);
        let doc_b = doc_of(&b);
        let baseline = run_one(&query, &doc_a, &doc_b, Strategy::DataShipping);
        for strategy in [Strategy::ByValue, Strategy::ByFragment, Strategy::ByProjection] {
            let out = run_one(&query, &doc_a, &doc_b, strategy);
            match (&baseline, &out) {
                (Ok(expected), Ok(got)) => prop_assert_eq!(
                    got, expected,
                    "{:?} diverged on {}\nA={}\nB={}", strategy, query, doc_a, doc_b
                ),
                (Err(_), Err(_)) => {} // both error: acceptable
                (l, r) => prop_assert!(
                    false,
                    "{:?} error divergence on {}: local={:?} remote={:?}",
                    strategy, query, l, r
                ),
            }
        }
    }
}
