#!/usr/bin/env bash
# Offline CI gate: the workspace must build, test, and lint clean with zero
# registry access (no network in the build environment).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== clippy (all targets, deny warnings) =="
cargo clippy --offline --all-targets -- -D warnings

echo "== paths bench smoke (small N, offline) =="
# Small-scale run of the staircase-join bench into a scratch path (the
# committed BENCH_paths.json is the full-scale artifact). Every emitted
# point must report indexed == scan results.
cargo run --release --offline --example paths_bench -- --small --out target/BENCH_paths.ci.json
grep -q '"results_identical": true' target/BENCH_paths.ci.json
if grep -q '"results_identical": false' target/BENCH_paths.ci.json; then
    echo "paths bench: indexed and scan results diverged" >&2
    exit 1
fi

echo "== plans bench smoke (small N, offline) =="
# Small-scale run of the plan-compilation bench into a scratch path (the
# committed BENCH_plans.json is the full-scale artifact). Every emitted
# point must report compiled execution bit-identical to the interpreter —
# results and wire bytes both.
cargo run --release --offline --example plans_bench -- --small --out target/BENCH_plans.ci.json
grep -q '"results_identical": true' target/BENCH_plans.ci.json
grep -q '"bytes_identical": true' target/BENCH_plans.ci.json
if grep -q 'identical": false' target/BENCH_plans.ci.json; then
    echo "plans bench: compiled and interpreted execution diverged" >&2
    exit 1
fi
# Tracing overhead budget: a traced warm run must stay within 3% (plus a
# 150us timer-noise floor) of the untraced run on every workload query.
grep -q '"trace_overhead_ok": true' target/BENCH_plans.ci.json
if grep -q '"trace_overhead_ok": false' target/BENCH_plans.ci.json; then
    echo "plans bench: tracing overhead exceeded the 3% budget" >&2
    exit 1
fi

echo "== joins bench smoke (small N, offline) =="
# Small-scale run of the semi-join bench into a scratch path (the
# committed BENCH_joins.json is the full-scale artifact). Every emitted
# point must report the semi-join result identical to the paper baseline
# and the off-toggle wire byte-identical to the interpreter oracle.
cargo run --release --offline --example joins_bench -- --small --out target/BENCH_joins.ci.json
grep -q '"results_identical": true' target/BENCH_joins.ci.json
grep -q '"bytes_identical": true' target/BENCH_joins.ci.json
if grep -q 'identical": false' target/BENCH_joins.ci.json; then
    echo "joins bench: semi-join execution diverged from the baseline" >&2
    exit 1
fi

echo "== throughput bench smoke (small N, offline) =="
# Small-scale run of the multi-tenant saturation sweep into a scratch path
# (the committed BENCH_throughput.json is the full-scale artifact). The
# small sweep drives the workload at and past saturation: the shed path
# must fire (a zero total_shed means admission control never engaged),
# goodput must stay within 10% of peak at the highest offered load
# (flat_top), every completed result must be bit-identical to serial
# execution, and every non-completed query must carry a typed error —
# with zero panics (any panic fails the run itself).
cargo run --release --offline --example throughput_bench -- --small --out target/BENCH_throughput.ci.json
grep -q '"flat_top": true' target/BENCH_throughput.ci.json
if grep -q '"total_shed": 0,' target/BENCH_throughput.ci.json; then
    echo "throughput bench: the saturating sweep never shed — admission control is dead" >&2
    exit 1
fi
if grep -q '"results_identical": false' target/BENCH_throughput.ci.json; then
    echo "throughput bench: a completed query diverged from serial execution" >&2
    exit 1
fi
if grep -q '"all_errors_typed": false' target/BENCH_throughput.ci.json; then
    echo "throughput bench: an untyped error escaped the scheduler" >&2
    exit 1
fi

echo "== multi-process crash harness (3 daemons over TCP, kill -9, drain) =="
# Live `xqd serve` daemons on localhost ephemeral ports: the federated-join
# workload must return bit-identical results to the simulated oracle over
# the real wire, a kill -9'd peer must surface as a typed error (with a
# replica standing, as the identical result via failover), and every
# surviving daemon must exit 0 on graceful drain. The harness carries its
# own 90s watchdog; the outer timeout is belt-and-braces where coreutils
# provides one.
run_crash_harness() {
    cargo run --release --offline --example crash_harness -- --out target/ci_crash.json
}
if command -v timeout >/dev/null 2>&1; then
    timeout 150 cargo run --release --offline --example crash_harness -- --out target/ci_crash.json
else
    run_crash_harness
fi
grep -q '"equivalence_identical": true' target/ci_crash.json
grep -q '"killed_typed_or_identical": true' target/ci_crash.json
grep -q '"replica_failover_identical": true' target/ci_crash.json
grep -q '"drain_exit_zero": true' target/ci_crash.json

echo "== chaos smoke (seeded fault sweep + replica failover, offline) =="
# Small-N seeded fault-injection sweep across all three wire semantics,
# followed by the replicated scene: every peer's documents live on a
# stand-in host and the schedule kills the elected primary. The example
# exits non-zero if any schedule returns a wrong answer, an untyped error,
# panics, or degrades to data shipping while a healthy replica is up.
cargo run --release --offline --example chaos_tour -- --seeds 25 --quiet

echo "== traced chaos smoke (byte-identical replay + trace_event shape) =="
# A seeded fault schedule run twice with tracing on must write the same
# bytes — the trace is part of the replay contract — and the Chrome export
# must carry the trace_event object-format markers chrome://tracing and
# Perfetto expect. The scheduler trace gets the same replay check.
XQD=target/release/xqd
TQ='count(doc("xrpc://p/d.xml")//c)'
printf '<a><b><c>one</c></b><b><c>two</c></b></a>' > target/ci_trace_doc.xml
for i in 1 2; do
    "$XQD" run -e "$TQ" --peer p:d.xml=target/ci_trace_doc.xml \
        --fault-seed 7 --fault-rate 0.3 \
        --trace-out "target/ci_trace_$i.json" > /dev/null 2> /dev/null
done
cmp target/ci_trace_1.json target/ci_trace_2.json
grep -q '"trace_id": "0x' target/ci_trace_1.json
grep -q '"name": "rpc.attempt"' target/ci_trace_1.json
"$XQD" run -e "$TQ" --peer p:d.xml=target/ci_trace_doc.xml \
    --fault-seed 7 --fault-rate 0.3 \
    --trace-out target/ci_trace.chrome --trace-format chrome > /dev/null 2> /dev/null
grep -q '^{"traceEvents": \[' target/ci_trace.chrome
grep -q '"ph": "X"' target/ci_trace.chrome
grep -q '"ts": ' target/ci_trace.chrome
grep -q '"dur": ' target/ci_trace.chrome
grep -q '"pid": 1' target/ci_trace.chrome
for i in 1 2; do
    "$XQD" workload -e "$TQ" --peer p:d.xml=target/ci_trace_doc.xml \
        --offered-qps 2000 --workers 1 --queue-depth 4 \
        --trace-out "target/ci_wtrace_$i.json" > /dev/null 2> /dev/null
done
cmp target/ci_wtrace_1.json target/ci_wtrace_2.json
grep -q '"name": "sched.run"' target/ci_wtrace_1.json
grep -q '"name": "sched.shed"' target/ci_wtrace_1.json

echo "== ci OK =="
