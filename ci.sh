#!/usr/bin/env bash
# Offline CI gate: the workspace must build, test, and lint clean with zero
# registry access (no network in the build environment).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== clippy (all targets, deny warnings) =="
cargo clippy --offline --all-targets -- -D warnings

echo "== ci OK =="
